"""Queue-scheduling policies and the SLO-driven adaptive batcher.

*OpenMP Loop Scheduling Revisited* (PAPERS.md) argues that choosing a
scheduling policy requires distributional runtime data — and that no single
policy wins every workload.  This module gives the serving stack the same
freedom the paper asks of loop schedulers: the queue-ordering discipline is
a pluggable :class:`QueuePolicy` selected per service
(``ServiceConfig.policy`` / ``serve --policy``), and an
:class:`AdaptiveBatcher` closes the loop from the live per-priority latency
histograms back onto the batching and admission knobs.

**How policies plug into the queue.**  The service keeps an
``asyncio.PriorityQueue`` and never re-sorts it; a policy therefore reduces
its discipline to a *static sort key* computed once at enqueue time —
smaller keys drain first, ties broken FIFO by the service's arrival
sequence.  Every shipped policy's discipline admits such a key:

* ``strict-priority`` — key ``(priority,)``: the pre-policy behavior,
  and still the default.
* ``weighted-fair`` — start-time fair queueing: each priority class *c*
  owns a virtual finish time advanced by ``1/weight(c)`` per enqueue, and
  the class clocks are floored by a global virtual time advanced on
  dequeue, so an idle class earns no credit and no class starves.
* ``edf`` — earliest deadline first: key ``(enqueue_time + deadline_s,
  priority)``; requests without a deadline sort last (+inf), a deadline
  already in the past sorts most urgent of all.
* ``aging`` — strict priority with a linear starvation-proof age boost:
  the effective priority ``p - elapsed/interval`` decays with queue time.
  Comparing two requests' effective priorities at any common instant is
  equivalent to comparing ``p * interval + enqueue_time``, which is
  time-independent — exactly what a static key needs.

Third-party policies register with the same :func:`register_policy`
decorator the shipped ones use.
"""

from __future__ import annotations

import math
from typing import (TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Tuple,
                    Type)

from ..api.types import LOWEST_PRIORITY, ScheduleRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..observability import MetricsRegistry


class PolicyError(ValueError):
    """Unknown policy name or invalid policy configuration."""


#: The policy registry: name -> QueuePolicy subclass.
POLICIES: Dict[str, Type["QueuePolicy"]] = {}


def register_policy(name: str):
    """Class decorator registering a :class:`QueuePolicy` under ``name``."""
    def decorator(cls: Type["QueuePolicy"]) -> Type["QueuePolicy"]:
        if name in POLICIES:
            raise PolicyError(f"queue policy {name!r} is already registered")
        cls.name = name
        POLICIES[name] = cls
        return cls
    return decorator


def policy_names() -> List[str]:
    """Registered policy names, sorted."""
    return sorted(POLICIES)


def create_policy(name: str, config: Optional[Any] = None) -> "QueuePolicy":
    """Instantiate the policy registered under ``name``.

    ``config`` is the service's :class:`~repro.serving.service.ServiceConfig`
    (policies read their tunables off it; duck-typed, so tests may pass any
    object carrying the fields a policy wants, or nothing).
    """
    try:
        cls = POLICIES[name]
    except KeyError:
        raise PolicyError(
            f"unknown queue policy {name!r}; registered policies: "
            f"{', '.join(policy_names())}") from None
    return cls(config)


class QueuePolicy:
    """Base class of queue-scheduling policies.

    A policy maps each admitted request to a static sort key
    (:meth:`sort_key`); the service's priority queue drains smaller keys
    first, FIFO within equal keys.  All calls happen on the service's event
    loop, so stateful policies need no locking.
    """

    name = "?"

    def __init__(self, config: Optional[Any] = None):
        self.config = config

    def sort_key(self, request: ScheduleRequest,
                 now: float) -> Tuple[float, ...]:
        """The queue key of ``request`` enqueued at ``now`` (event-loop
        clock).  Smaller drains first.  May advance policy state — call
        exactly once per queued request."""
        raise NotImplementedError

    def rider_key(self, request: ScheduleRequest,
                  now: float) -> Tuple[float, ...]:
        """The key ``request`` *would* get, without committing policy state.

        Coalescing riders attach to an in-flight leader instead of queueing
        work of their own; the service compares this key against the
        leader's to decide whether to re-prioritize the leader.  Stateless
        policies simply reuse :meth:`sort_key`.
        """
        return self.sort_key(request, now)

    def on_dequeue(self, key: Tuple[float, ...]) -> None:
        """Hook invoked when the entry queued under ``key`` enters service
        (weighted-fair advances its global virtual clock here)."""


@register_policy("strict-priority")
class StrictPriorityPolicy(QueuePolicy):
    """Priority 0 drains first, FIFO within a class (the historic default).

    A sustained stream of urgent requests starves lower classes forever —
    by design; pick ``aging`` or ``weighted-fair`` when that is not
    acceptable.
    """

    def sort_key(self, request: ScheduleRequest,
                 now: float) -> Tuple[float, ...]:
        return (float(request.priority),)


@register_policy("weighted-fair")
class WeightedFairPolicy(QueuePolicy):
    """Start-time fair queueing over priority classes — no starvation.

    Each class *c* receives service in proportion to ``weight(c)``
    (default ``LOWEST_PRIORITY + 1 - c``: priority 0 weighs 10, priority 9
    weighs 1; override per class via ``ServiceConfig.policy_weights``).
    A request's key is its class's virtual *finish* time: the class clock
    advances ``1/weight`` per request and is floored by the global virtual
    time, which itself advances to the key of each request entering service
    — so an idle class accumulates no credit, and every queued request
    holds a finite key that the advancing floor eventually reaches: no
    class waits forever behind a burst.
    """

    def __init__(self, config: Optional[Any] = None):
        super().__init__(config)
        self.weights = {c: float(LOWEST_PRIORITY + 1 - c)
                        for c in range(LOWEST_PRIORITY + 1)}
        overrides = getattr(config, "policy_weights", None)
        for klass, weight in (overrides or {}).items():
            weight = float(weight)
            if weight <= 0:
                raise PolicyError(
                    f"weighted-fair weights must be positive; class "
                    f"{klass!r} got {weight}")
            self.weights[int(klass)] = weight
        self._virtual = 0.0
        self._finish: Dict[int, float] = {}

    def _next_finish(self, request: ScheduleRequest) -> float:
        klass = request.priority
        weight = self.weights.get(klass, 1.0)
        start = max(self._virtual, self._finish.get(klass, 0.0))
        return start + 1.0 / weight

    def sort_key(self, request: ScheduleRequest,
                 now: float) -> Tuple[float, ...]:
        finish = self._next_finish(request)
        self._finish[request.priority] = finish
        return (finish,)

    def rider_key(self, request: ScheduleRequest,
                  now: float) -> Tuple[float, ...]:
        # A rider consumes no service share: peek without committing.
        return (self._next_finish(request),)

    def on_dequeue(self, key: Tuple[float, ...]) -> None:
        self._virtual = max(self._virtual, key[0])


@register_policy("edf")
class EarliestDeadlinePolicy(QueuePolicy):
    """Earliest deadline first over ``ScheduleRequest.deadline_s``.

    Deadlines are relative seconds from enqueue; the key is the absolute
    deadline on the event-loop clock, tie-broken by priority.  Requests
    without a deadline sort after every deadlined request (+inf); a
    deadline already in the past (``deadline_s <= 0``) sorts *before* every
    future deadline — the request most behind is the most urgent.
    """

    def sort_key(self, request: ScheduleRequest,
                 now: float) -> Tuple[float, ...]:
        deadline = request.deadline_s
        absolute = now + deadline if deadline is not None else math.inf
        return (absolute, float(request.priority))


@register_policy("aging")
class AgingPolicy(QueuePolicy):
    """Strict priority with a linear, starvation-proof age boost.

    A queued request's effective priority improves by one class per
    ``ServiceConfig.aging_interval_s`` of queue time.  Because the decay is
    linear and identical for everyone, ``p1 - (t - e1)/I < p2 - (t - e2)/I``
    holds at one instant iff it holds at every instant, and is equivalent
    to ``p1*I + e1 < p2*I + e2`` — so the time-independent key
    ``priority * interval + enqueue_time`` realizes the aging order with no
    re-sorting.  The oldest priority-9 request overtakes a fresh
    priority-0 request after ``9 * interval`` seconds of waiting: bounded
    worst-case delay for every class.
    """

    def __init__(self, config: Optional[Any] = None):
        super().__init__(config)
        interval = float(getattr(config, "aging_interval_s", 0.5) or 0.5)
        if interval <= 0:
            raise PolicyError(
                f"aging_interval_s must be positive, got {interval}")
        self.age_interval_s = interval

    def sort_key(self, request: ScheduleRequest,
                 now: float) -> Tuple[float, ...]:
        return (request.priority * self.age_interval_s + now,)


# -- adaptive batching against a latency SLO ----------------------------------------


def quantile_from_counts(bounds: Tuple[float, ...], counts: List[float],
                         q: float) -> float:
    """The fixed-bucket quantile estimate over raw (delta) bucket counts —
    the same walk :meth:`Histogram.quantile` does, usable on count deltas
    between two snapshots."""
    total = sum(counts)
    if total <= 0:
        return math.nan
    rank = max(1, math.ceil(q * total))
    seen = 0.0
    for index, count in enumerate(counts):
        seen += count
        if seen >= rank:
            return bounds[index] if index < len(bounds) else math.inf
    return math.inf  # pragma: no cover - loop always reaches rank


class AdaptiveBatcher:
    """Tunes batch window, batch size, and admission depth against an SLO.

    Reads the live ``repro_request_latency_seconds`` histogram, takes the
    bucket-count delta since its last tick, and compares the target
    quantile (p95 by default) of *that interval's* traffic against
    ``ServiceConfig.latency_slo_s``:

    * over the SLO → **tighten**: halve the batch window (stragglers wait
      less), double ``max_batch_size`` up to 4x the configured value (drain
      the queue in fewer dispatches), and cut ``max_queue_depth`` by a
      quarter (shed sooner, bounding queueing delay) — never below a floor
      of 1/4 of the configured depth.
    * under half the SLO with headroom spent → **relax**: walk every knob
      back toward its configured value.
    * otherwise → **hold**.

    Decisions mutate the service's live :class:`ServiceConfig` in place
    (the batcher and admission controller read it per request) and are
    observable three ways: the ``repro_adaptive_adjustments_total{action}``
    counter (alertable as a rate — a sustained ``tighten`` rate means the
    SLO is chronically missed), three ``repro_adaptive_*`` gauges mirroring
    the live knob values, and a ``service.adaptive`` trace span per
    adjustment recorded by the service.
    """

    #: Which latency quantile is compared against the SLO.
    target_quantile = 0.95

    def __init__(self, config: Any, metrics: "MetricsRegistry"):
        self.config = config
        self.metrics = metrics
        self.slo_s = float(getattr(config, "latency_slo_s", 0.25))
        self.interval_s = float(getattr(config, "adaptive_interval_s", 0.5))
        # The configured values are the operating point adaptation drifts
        # from under pressure and back to when pressure passes.
        self._configured_window = config.batch_window_s
        self._configured_batch = config.max_batch_size
        self._configured_depth = config.max_queue_depth
        self._min_window = config.batch_window_s / 8.0
        self._max_batch = max(1, config.max_batch_size * 4)
        self._min_depth = (max(1, config.max_queue_depth // 4)
                           if config.max_queue_depth > 0 else 0)
        self._last_counts: Optional[List[float]] = None
        self._last_tick: Optional[float] = None
        self._adjustments = metrics.counter(
            "repro_adaptive_adjustments_total",
            "Adaptive-batcher decisions by action "
            "(tighten / relax / hold).", ("action",))
        self._window_gauge = metrics.gauge(
            "repro_adaptive_batch_window_seconds",
            "Live batch window after adaptive adjustment.")
        self._batch_gauge = metrics.gauge(
            "repro_adaptive_batch_size",
            "Live max batch size after adaptive adjustment.")
        self._depth_gauge = metrics.gauge(
            "repro_adaptive_queue_depth",
            "Live max queue depth after adaptive adjustment "
            "(0: unbounded).")
        self._publish()

    def _publish(self) -> None:
        self._window_gauge.set(self.config.batch_window_s)
        self._batch_gauge.set(self.config.max_batch_size)
        self._depth_gauge.set(self.config.max_queue_depth)

    def _latency_totals(self) -> Optional[Tuple[Tuple[float, ...],
                                                List[float]]]:
        histogram = self.metrics.get("repro_request_latency_seconds")
        if histogram is None:
            return None
        bounds = histogram.buckets
        totals = [0.0] * (len(bounds) + 1)
        for _, series in histogram.series_items():
            for index, count in enumerate(series.counts):
                totals[index] += count
        return bounds, totals

    def maybe_tick(self, now: float) -> Optional[Dict[str, Any]]:
        """Run one adaptation step if ``interval_s`` has elapsed; returns
        the decision (see :meth:`tick`) or None when it is not yet time."""
        if self._last_tick is not None \
                and now - self._last_tick < self.interval_s:
            return None
        self._last_tick = now
        return self.tick()

    def tick(self) -> Dict[str, Any]:
        """One adaptation step over the latency observed since the last."""
        observed = self._latency_totals()
        if observed is None:
            return self._decide("hold", math.nan)
        bounds, totals = observed
        previous, self._last_counts = self._last_counts, totals
        if previous is None or len(previous) != len(totals):
            return self._decide("hold", math.nan)
        deltas = [max(0.0, cur - prev)
                  for cur, prev in zip(totals, previous)]
        latency = quantile_from_counts(bounds, deltas, self.target_quantile)
        if math.isnan(latency):
            # No traffic this interval: nothing to adapt on.
            return self._decide("hold", latency)
        if latency > self.slo_s:
            return self._decide("tighten", latency)
        if latency < self.slo_s / 2.0 and self._adapted():
            return self._decide("relax", latency)
        return self._decide("hold", latency)

    def _adapted(self) -> bool:
        config = self.config
        return (config.batch_window_s != self._configured_window
                or config.max_batch_size != self._configured_batch
                or config.max_queue_depth != self._configured_depth)

    def _decide(self, action: str, latency: float) -> Dict[str, Any]:
        config = self.config
        if action == "tighten":
            config.batch_window_s = max(self._min_window,
                                        config.batch_window_s * 0.5)
            config.max_batch_size = min(self._max_batch,
                                        config.max_batch_size * 2)
            if config.max_queue_depth > 0:
                config.max_queue_depth = max(
                    self._min_depth, (config.max_queue_depth * 3) // 4)
        elif action == "relax":
            config.batch_window_s = min(self._configured_window,
                                        config.batch_window_s * 2.0
                                        or self._configured_window)
            config.max_batch_size = max(self._configured_batch,
                                        config.max_batch_size // 2)
            if self._configured_depth > 0:
                config.max_queue_depth = min(
                    self._configured_depth,
                    config.max_queue_depth
                    + max(1, self._configured_depth // 4))
        self._adjustments.labels(action).inc()
        self._publish()
        return {
            "action": action,
            "latency_s": latency,
            "target_quantile": self.target_quantile,
            "slo_s": self.slo_s,
            "batch_window_s": config.batch_window_s,
            "max_batch_size": config.max_batch_size,
            "max_queue_depth": config.max_queue_depth,
        }

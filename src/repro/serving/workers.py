"""Multi-process worker pool over one shared SQLite cache.

The a-priori normalization of the source paper makes scheduling requests
embarrassingly cacheable *and* independent: once programs are reduced to
canonical forms, any worker can serve any request as long as all workers
agree on one content-addressed cache.  :class:`WorkerPool` exploits exactly
that property:

* **one Session per worker process** — each worker of the pool builds its
  own :class:`~repro.api.Session` from a picklable :class:`WorkerConfig`,
  so scheduling runs on real CPU cores instead of GIL-sharing threads.
* **one shared cache file** — every worker session binds the same
  :class:`~repro.api.SQLiteCacheBackend` path (WAL mode, busy timeout,
  retried writes), so a schedule computed by one worker is a disk hit for
  every other worker and for later pool generations.
* **one tuning-database shard per worker** — the coordinator partitions a
  :class:`~repro.api.ShardedTuningDatabase` so worker ``i`` holds shard
  ``i`` (the layout a multi-machine deployment maps one shard per node).
* **scatter-gather tuning** — :meth:`WorkerPool.tune` scatters tune
  requests over the workers, gathers the database entries each worker
  produced, merges them into the coordinator's sharded database by
  embedding hash, and redistributes them so every worker sees the grown
  database.

The pool is the process-level analogue of ``Session.schedule_batch``: the
async :class:`~repro.serving.service.SchedulingService` plugs it in as its
batch executor (``serve --workers N``), keeping micro-batching and
coalescing semantics unchanged — batches are simply scattered over
processes instead of threads.
"""

from __future__ import annotations

import json
import multiprocessing
import queue as queue_module
import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..api.registry import RegistryError
from ..api.session import Session
from ..api.types import (EncodedScheduleResponse, ScheduleRequest,
                         ScheduleResponse)
from ..observability import merge_registry_dicts
from ..passes.registry import PipelineRegistryError
from ..scheduler.database import (DatabaseEntry, TuningDatabase,
                                  apply_feedback_record)
from ..scheduler.sharding import ShardedTuningDatabase, embedding_shard
from ..scheduler.evolutionary import SearchConfig
from ..scheduler.tiramisu import MctsConfig

#: Exception types reconstructed by name on the coordinator, so the serving
#: layer's error mapping (ValueError -> HTTP 400, ...) survives the process
#: boundary.  Anything else resurfaces as :class:`WorkerError`.
_PORTABLE_ERRORS = {
    "ValueError": ValueError,
    "TypeError": TypeError,
    "KeyError": KeyError,
    "IndexError": IndexError,
    "RuntimeError": RuntimeError,
    # KeyError subclasses of the registries: a request naming an unknown
    # workload/scheduler/pipeline must stay a client error (HTTP 400) after
    # crossing the process boundary.
    "RegistryError": RegistryError,
    "PipelineRegistryError": PipelineRegistryError,
}


class WorkerError(RuntimeError):
    """An exception raised inside a worker process that has no portable
    builtin type; ``error_type`` names the original class."""

    def __init__(self, error_type: str, message: str):
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type


@dataclass
class WorkerConfig:
    """Picklable recipe for the :class:`~repro.api.Session` of one worker.

    Mirrors the Session keyword surface a serving deployment uses;
    ``cache_path`` is the *shared* SQLite cache file every worker binds
    (``None`` gives each worker an isolated in-memory cache, which still
    parallelizes but loses cross-worker hits).
    """

    scheduler: str = "daisy"
    threads: int = 4
    size: str = "large"
    pipeline: Optional[str] = None
    cache_path: Optional[str] = None
    search: Optional[SearchConfig] = None
    mcts: Optional[MctsConfig] = None

    def build_session(self, shard_entries: Sequence[Dict[str, Any]]) -> Session:
        """Build this worker's session around its database shard."""
        database = TuningDatabase(
            [DatabaseEntry.from_dict(item) for item in shard_entries])
        return Session(threads=self.threads, scheduler=self.scheduler,
                       size=self.size, pipeline=self.pipeline,
                       cache_path=self.cache_path, database=database,
                       search=self.search, mcts=self.mcts)


# -- worker-process half ----------------------------------------------------------
#
# ProcessPoolExecutor workers run these module-level functions; the session
# built by ``_init_worker`` lives in the globals of the *child* process.

_WORKER_SESSION: Optional[Session] = None
_WORKER_INDEX: int = -1
_WORKER_COUNT: int = 0
_WORKER_BARRIER = None
_WORKER_SEEN: set = set()


def _entry_key(entry_dict: Dict[str, Any]) -> str:
    """Stable identity of one database entry (dedupe for redistribution).

    Feedback fields are stripped first: online measurements mutate an
    entry's ``measured_runtime``/``measurements`` in place, and an entry
    must stay *one* entry across redistribution rounds no matter how many
    timings it absorbed in between (mirrors ``DatabaseEntry.identity``).
    """
    stripped = {key: value for key, value in entry_dict.items()
                if key not in ("measured_runtime", "measurements")}
    return json.dumps(stripped, sort_keys=True)


def _init_worker(config: WorkerConfig,
                 shard_payloads: List[List[Dict[str, Any]]],
                 index_queue, barrier) -> None:
    """Initializer of every pool process: claim an index, build the session."""
    global _WORKER_SESSION, _WORKER_INDEX, _WORKER_COUNT, _WORKER_BARRIER
    global _WORKER_SEEN
    try:
        index = index_queue.get(timeout=30)
    except queue_module.Empty:
        raise RuntimeError("worker pool initializer found no free worker index")
    _WORKER_INDEX = index
    _WORKER_COUNT = len(shard_payloads)
    _WORKER_BARRIER = barrier
    shard = shard_payloads[index]
    _WORKER_SEEN = {_entry_key(item) for item in shard}
    _WORKER_SESSION = config.build_session(shard)


def _worker_ping() -> int:
    """Barrier rendezvous used by ``start()``/``report()`` to reach every
    worker exactly once; returns the worker index."""
    try:
        _WORKER_BARRIER.wait(timeout=60)
    except threading.BrokenBarrierError:
        pass  # degraded: the coordinator tolerates duplicate/missing workers
    return _WORKER_INDEX


def _error_payload(error: BaseException) -> Dict[str, Any]:
    return {"error": {"type": type(error).__name__, "message": str(error)}}


def _worker_schedule(request_dict: Dict[str, Any]) -> Dict[str, Any]:
    """Run one schedule request on this worker's session.

    The response travels as one pre-encoded JSON string: JSON encoding
    happens here, on a parallel worker, and the coordinator (and the HTTP
    layer, which replies with exactly these bytes) never re-parses or
    re-serializes the response on its serial hot path.
    """
    try:
        request = ScheduleRequest.from_dict(request_dict)
        response = _WORKER_SESSION.schedule(request)
        payload = {"response_json": json.dumps(response.to_dict())}
    except Exception as error:  # noqa: BLE001 - marshalled to the coordinator
        payload = _error_payload(error)
    # Ship this worker's finished trace spans back in-band so they rejoin
    # the coordinator's trace (the request carried the parent context).
    trace = request_dict.get("trace")
    if trace and _WORKER_SESSION is not None:
        spans = _WORKER_SESSION.tracer.export_fragment(trace["trace_id"])
        if spans:
            payload["spans"] = spans
    return payload


def _worker_schedule_many(request_dicts: List[Dict[str, Any]]
                          ) -> List[Dict[str, Any]]:
    """Run one scatter chunk; one task per worker amortizes the IPC cost
    that per-request tasks would pay."""
    return [_worker_schedule(item) for item in request_dicts]


def _worker_tune(request_dict: Dict[str, Any]) -> Dict[str, Any]:
    """Run one tune request; returns the response plus the database entries
    the tune added, for the coordinator's scatter-gather merge."""
    session = _WORKER_SESSION
    before = len(session.database)
    try:
        request = ScheduleRequest.from_dict(request_dict)
        response = session.schedule(request)
    except Exception as error:  # noqa: BLE001 - marshalled to the coordinator
        return _error_payload(error)
    new_entries = [entry.to_dict()
                   for entry in session.database.entries[before:]]
    for item in new_entries:
        _WORKER_SEEN.add(_entry_key(item))
    return {"response_json": json.dumps(response.to_dict()),
            "entries": new_entries}


def _worker_absorb_entries(entry_dicts: List[Dict[str, Any]]
                           ) -> Tuple[int, int]:
    """Barrier-synchronized redistribution: add the entries hashing to this
    worker's shard that it has not seen yet; returns (index, added)."""
    try:
        _WORKER_BARRIER.wait(timeout=60)
    except threading.BrokenBarrierError:
        pass
    added = 0
    for item in entry_dicts:
        entry = DatabaseEntry.from_dict(item)
        if embedding_shard(entry.embedding, _WORKER_COUNT) != _WORKER_INDEX:
            continue
        key = _entry_key(item)
        if key in _WORKER_SEEN:
            continue
        _WORKER_SEEN.add(key)
        _WORKER_SESSION.database.add_entry(entry)
        added += 1
    return _WORKER_INDEX, added


def _worker_apply_feedback(records: List[Dict[str, Any]]
                           ) -> Tuple[int, Dict[str, int]]:
    """Barrier-synchronized online-feedback round (one task per worker).

    The coordinator already applied every record to its own sharded
    database and marked which ones created a measurement-born entry
    (``record["added"]``); each worker mirrors that decision on its shard:
    existing-entry updates apply wherever the matching entry lives
    (``add_missing=False`` everywhere else is a silent no-op), new entries
    are created only by the worker owning the embedding's shard — the same
    routing redistribution uses.
    """
    try:
        _WORKER_BARRIER.wait(timeout=60)
    except threading.BrokenBarrierError:
        pass
    session = _WORKER_SESSION
    counts = {"applied": 0, "added": 0, "skipped": 0}
    for record in records:
        vector = record.get("embedding")
        if vector is None:
            continue  # the coordinator counted the skip once, pool-wide
        if record.get("added"):
            if embedding_shard(vector, _WORKER_COUNT) != _WORKER_INDEX:
                continue
            counts[apply_feedback_record(record, session.database,
                                         add_missing=True)] += 1
        else:
            outcome = apply_feedback_record(record, session.database,
                                            add_missing=False)
            if outcome != "skipped":
                # Exactly one worker holds the matching entry; the "not my
                # shard" no-ops of the others are routing, not skips.
                counts[outcome] += 1
    session.note_feedback(counts)
    return _WORKER_INDEX, counts


def _worker_report() -> Tuple[int, Dict[str, Any]]:
    """Barrier-synchronized session report of this worker."""
    try:
        _WORKER_BARRIER.wait(timeout=60)
    except threading.BrokenBarrierError:
        pass
    return _WORKER_INDEX, _WORKER_SESSION.report().to_dict()


def _worker_metrics() -> Tuple[int, Dict[str, Any]]:
    """Barrier-synchronized metrics-registry snapshot of this worker."""
    try:
        _WORKER_BARRIER.wait(timeout=60)
    except threading.BrokenBarrierError:
        pass
    return _WORKER_INDEX, _WORKER_SESSION.metrics.to_dict()


# -- coordinator half --------------------------------------------------------------


class PortableScheduleResponse(EncodedScheduleResponse):
    """A worker's :class:`~repro.api.ScheduleResponse` carried as its JSON
    text (see :class:`~repro.api.types.EncodedScheduleResponse`).

    The coordinator mostly shuttles worker responses onward — the HTTP
    layer replies with exactly these bytes — so parsing JSON or decoding
    the IR program on the coordinator would be pure overhead on the serving
    hot path.
    """

    __slots__ = ()

#: Report fields merged by union instead of summation.
_UNION_FIELDS = {"schedulers"}
#: Report fields merged by taking the first value (homogeneous per pool).
_FIRST_FIELDS = {"cache_backend"}


def merge_worker_reports(reports: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate per-worker ``SessionReport`` dicts into one pool-wide dict.

    Counters sum, ``schedulers`` unions, ``normalization_passes`` sums per
    pass name, and ``database_shards`` concatenates one entry count per
    worker (each worker's database is one shard).
    """
    merged: Dict[str, Any] = {}
    shards: List[int] = []
    for report in reports:
        shards.append(int(report.get("database_entries", 0)))
        for key, value in report.items():
            if key == "database_shards":
                continue
            if key in _FIRST_FIELDS:
                merged.setdefault(key, value)
            elif key in _UNION_FIELDS:
                merged[key] = sorted(set(merged.get(key, [])) | set(value))
            elif key == "normalization_passes":
                target = merged.setdefault(key, {})
                for name, entry in value.items():
                    bucket = target.setdefault(name, {})
                    for stat, amount in entry.items():
                        if isinstance(amount, dict):
                            # Nested pass counters (hoisted, cse_hits,
                            # flops_saved, ...) sum key-wise.
                            nested = bucket.setdefault(stat, {})
                            for counter, delta in amount.items():
                                nested[counter] = nested.get(counter, 0) + delta
                        else:
                            bucket[stat] = bucket.get(stat, 0) + amount
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                merged[key] = merged.get(key, 0) + value
            else:
                merged.setdefault(key, value)
    merged["database_shards"] = shards
    return merged


@dataclass
class PoolStats:
    """What the pool did since it started (coordinator-side counters)."""

    scheduled: int = 0
    tuned: int = 0
    errors: int = 0
    gathered_entries: int = 0
    redistributed_entries: int = 0
    feedback_applied: int = 0
    feedback_added: int = 0
    feedback_skipped: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "scheduled": self.scheduled,
            "tuned": self.tuned,
            "errors": self.errors,
            "gathered_entries": self.gathered_entries,
            "redistributed_entries": self.redistributed_entries,
            "feedback_applied": self.feedback_applied,
            "feedback_added": self.feedback_added,
            "feedback_skipped": self.feedback_skipped,
        }


class WorkerPool:
    """``num_workers`` processes, each a Session over the shared cache.

    The pool is a drop-in batch executor for the async service: its
    :meth:`schedule_batch` has the contract of
    ``Session.schedule_batch(..., return_exceptions=True)`` — responses in
    input order, per-item exceptions in-band — so
    :class:`~repro.serving.service.SchedulingService` can scatter its
    micro-batches over processes without changing queueing, coalescing, or
    error semantics.

    ``database`` seeds the workers: a :class:`ShardedTuningDatabase` is
    re-hashed to one shard per worker, a plain :class:`TuningDatabase` is
    partitioned the same way.  The coordinator keeps its own sharded copy
    (``pool.database``) that :meth:`tune` grows by gathering worker results.

    Use as a context manager, or call :meth:`close` — worker processes are
    real OS resources.
    """

    def __init__(self, num_workers: int,
                 config: Optional[WorkerConfig] = None,
                 database: Optional[Union[ShardedTuningDatabase,
                                          TuningDatabase]] = None,
                 mp_context: str = "spawn"):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        self.config = config or WorkerConfig()
        self.stats = PoolStats()
        #: Coordinator-side tracer that worker span fragments rejoin; the
        #: serving layer points this at the coordinator session's tracer.
        self.tracer = None
        if database is None:
            self.database = ShardedTuningDatabase(num_workers)
        elif isinstance(database, ShardedTuningDatabase):
            self.database = database.rebalance(num_workers)
        else:
            self.database = ShardedTuningDatabase.from_database(
                database, num_workers)
        shard_payloads = [
            [entry.to_dict() for entry in self.database.shard(index).entries]
            for index in range(num_workers)]
        context = multiprocessing.get_context(mp_context)
        self._index_queue = context.Queue()
        for index in range(num_workers):
            self._index_queue.put(index)
        self._barrier = context.Barrier(num_workers)
        # Rendezvous rounds (start / report / redistribute) must not
        # interleave: two concurrent rounds against the one shared barrier
        # would break its one-task-per-worker guarantee.
        self._rendezvous_lock = threading.Lock()
        self._executor: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
            max_workers=num_workers, mp_context=context,
            initializer=_init_worker,
            initargs=(self.config, shard_payloads,
                      self._index_queue, self._barrier))

    # -- lifecycle ---------------------------------------------------------------

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def start(self) -> None:
        """Force-spawn every worker and block until all sessions are built.

        Optional — the first batch spawns workers on demand — but a server
        (and any benchmark) wants the spawn cost paid up front, and an
        initializer failure (bad cache path, unknown scheduler) surfaces
        here instead of on the first request.
        """
        self._reach_all_workers(_worker_ping)

    def close(self) -> None:
        """Shut the worker processes down.  Idempotent."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
            self._index_queue.close()

    def _require_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            raise RuntimeError("worker pool is closed")
        return self._executor

    def _reach_all_workers(self, task, *args) -> Dict[int, Any]:
        """Submit one barrier-synchronized task per worker and gather their
        results keyed by worker index.

        The barrier makes each live worker take exactly one task; if a
        worker is busy past the barrier timeout the barrier breaks and the
        gather degrades gracefully (some indices may repeat or be absent —
        callers treat the result as best-effort).  Rounds are serialized by
        a coordinator-side lock so concurrent report()/tune() calls cannot
        break each other's rendezvous.
        """
        executor = self._require_executor()
        with self._rendezvous_lock:
            futures = [executor.submit(task, *args)
                       for _ in range(self.num_workers)]
            gathered: Dict[int, Any] = {}
            for future in futures:
                outcome = future.result()
                if isinstance(outcome, tuple):
                    index, value = outcome
                else:
                    index, value = outcome, outcome
                gathered[index] = value
            self._barrier.reset()
        return gathered

    # -- scheduling --------------------------------------------------------------

    def _decode(self, payload: Dict[str, Any]
                ) -> Union[PortableScheduleResponse, Exception]:
        spans = payload.get("spans")
        if spans and self.tracer is not None:
            # Rejoin worker-side spans before the caller's future resolves,
            # so the root span always closes over a complete trace.
            self.tracer.absorb(spans)
        error = payload.get("error")
        if error is not None:
            portable = _PORTABLE_ERRORS.get(error["type"])
            if portable is not None:
                return portable(error["message"])
            return WorkerError(error["type"], error["message"])
        return PortableScheduleResponse(payload["response_json"])

    def schedule_batch(self, requests: Sequence[ScheduleRequest]
                       ) -> List[Union[PortableScheduleResponse, Exception]]:
        """Scatter the batch over the workers; gather responses in order.

        Requests are split round-robin into one chunk per worker (a chunk
        is one executor task, amortizing IPC over the chunk).  Matches
        ``Session.schedule_batch(..., return_exceptions=True)``: per-item
        *exceptions* (bad requests, scheduler errors) come back in-band so
        one bad request cannot fail its batchmates.  A crashed worker
        *process* (OOM kill, segfault) is different: ``concurrent.futures``
        marks the whole pool broken, every chunk of the batch returns
        ``BrokenProcessPool`` in-band, and the pool must be recreated —
        there is no automatic restart.
        """
        executor = self._require_executor()
        if not requests:
            return []
        indexed = list(enumerate(requests))
        chunks = [chunk for chunk
                  in (indexed[offset::self.num_workers]
                      for offset in range(self.num_workers)) if chunk]
        submitted = [
            (chunk, executor.submit(
                _worker_schedule_many,
                [request.to_dict() for _, request in chunk]))
            for chunk in chunks]
        results: List[Union[PortableScheduleResponse, Exception]] = \
            [None] * len(requests)  # type: ignore[list-item]
        for chunk, future in submitted:
            try:
                payloads = future.result()
                decoded = [self._decode(payload) for payload in payloads]
            except Exception as error:  # noqa: BLE001 - broken pool etc.
                decoded = [error] * len(chunk)
            for (index, _), outcome in zip(chunk, decoded):
                if isinstance(outcome, Exception):
                    self.stats.errors += 1
                else:
                    self.stats.scheduled += 1
                results[index] = outcome
        return results

    def schedule(self, request: ScheduleRequest) -> ScheduleResponse:
        """Schedule one request on some worker; raises on failure."""
        result = self.schedule_batch([request])[0]
        if isinstance(result, Exception):
            raise result
        return result

    # -- tuning: scatter, gather, merge, redistribute ----------------------------

    def tune(self, requests: Sequence[ScheduleRequest],
             redistribute: bool = True
             ) -> List[Union[ScheduleResponse, Exception]]:
        """Scatter tune requests over the workers and gather the results.

        Each worker tunes into its local database; the entries it produced
        are gathered and merged into the coordinator's sharded database
        (``pool.database``) by embedding hash.  With ``redistribute`` (the
        default) the merged entries are then pushed back so the worker
        owning each entry's shard absorbs it — after which every future
        request, on any worker, schedules against the grown database.
        """
        executor = self._require_executor()
        prepared = []
        for request in requests:
            if not request.tune:
                raise ValueError(
                    "WorkerPool.tune takes tune requests "
                    "(ScheduleRequest(..., tune=True))")
            prepared.append(request.to_dict())
        futures = [executor.submit(_worker_tune, item) for item in prepared]
        results: List[Union[ScheduleResponse, Exception]] = []
        gathered: List[Dict[str, Any]] = []
        for future in futures:
            try:
                payload = future.result()
            except Exception as error:  # noqa: BLE001 - broken pool etc.
                self.stats.errors += 1
                results.append(error)
                continue
            decoded = self._decode(payload)
            if isinstance(decoded, Exception):
                self.stats.errors += 1
            else:
                self.stats.tuned += 1
                gathered.extend(payload.get("entries", ()))
            results.append(decoded)
        if gathered:
            self.stats.gathered_entries += self.database.add_entries(
                DatabaseEntry.from_dict(item) for item in gathered)
            if redistribute:
                absorbed = self._reach_all_workers(
                    _worker_absorb_entries, gathered)
                self.stats.redistributed_entries += sum(
                    value for value in absorbed.values()
                    if isinstance(value, int))
        return results

    # -- online feedback ---------------------------------------------------------

    def record_measurement(self, records: Sequence[Dict[str, Any]]
                           ) -> Dict[str, int]:
        """Apply executed-schedule feedback records pool-wide.

        ``records`` come from :meth:`repro.api.Session.measurement_feedback`
        (plain JSON values, so they cross the process boundary unchanged).
        The coordinator's sharded database absorbs them first — deciding,
        under its shard locks, which records update an existing entry and
        which create a measurement-born one — then a barrier round pushes
        the records (decisions attached) to every worker so each mirrors
        the effect on its own shard.  Future batches, on any worker, then
        schedule against the re-ranked database.  Returns the
        coordinator-side outcome counts ``{"applied", "added", "skipped"}``.

        Safe to call concurrently with :meth:`tune`: rendezvous rounds are
        serialized by the coordinator lock, and the coordinator database's
        per-shard locks order the merge against feedback application.
        """
        prepared: List[Dict[str, Any]] = []
        counts = {"applied": 0, "added": 0, "skipped": 0}
        for record in records:
            record = dict(record)
            outcome = apply_feedback_record(record, self.database,
                                            add_missing=True)
            counts[outcome] += 1
            record["added"] = outcome == "added"
            prepared.append(record)
        self.stats.feedback_applied += counts["applied"]
        self.stats.feedback_added += counts["added"]
        self.stats.feedback_skipped += counts["skipped"]
        if prepared:
            self._reach_all_workers(_worker_apply_feedback, prepared)
        return counts

    # -- introspection -----------------------------------------------------------

    def report(self) -> Dict[str, Any]:
        """Scatter-gather of every worker's ``Session.report()``.

        Returns ``{"num_workers", "reports_collected", "merged",
        "per_worker", "pool"}`` where ``merged`` aggregates the per-worker
        counters (see :func:`merge_worker_reports`) and ``pool`` carries the
        coordinator-side :class:`PoolStats`.
        """
        per_worker = {index: report for index, report
                      in self._reach_all_workers(_worker_report).items()}
        return {
            "num_workers": self.num_workers,
            "reports_collected": len(per_worker),
            "merged": merge_worker_reports(per_worker.values()),
            "per_worker": {str(index): report
                           for index, report in sorted(per_worker.items())},
            "pool": self.stats.to_dict(),
        }

    def metrics(self) -> Dict[str, Any]:
        """Scatter-gather of every worker's metrics-registry snapshot.

        Returns ``{"num_workers", "registries_collected", "merged",
        "per_worker"}``; ``merged`` sums the per-worker snapshots with
        :func:`~repro.observability.merge_registry_dicts` (counters and
        histogram buckets add, so the merged histogram count equals the sum
        of per-worker counts).  Like :meth:`report`, this rendezvouses with
        every worker process and may block while busy workers finish.
        """
        per_worker = {index: snapshot for index, snapshot
                      in self._reach_all_workers(_worker_metrics).items()}
        return {
            "num_workers": self.num_workers,
            "registries_collected": len(per_worker),
            "merged": merge_registry_dicts(
                snapshot for _, snapshot in sorted(per_worker.items())),
            "per_worker": {str(index): snapshot
                           for index, snapshot in sorted(per_worker.items())},
        }

"""JSON-over-HTTP endpoint of the scheduling service (stdlib only).

Routes:

* ``GET  /healthz``     — liveness: ``{"status": "ok"}``.
* ``GET  /v1/report``   — session counters plus service and admission
  stats; with an attached worker pool, coordinator pool counters too, and
  ``?workers=1`` additionally scatter-gathers every worker's session report
  (slower — it rendezvouses with all worker processes).
* ``GET  /metrics``     — the session's metrics registry in the Prometheus
  text exposition format (queue-depth gauge, per-priority latency
  histograms, admission-shed counters, cache and pass counters); with an
  attached worker pool, ``?workers=1`` merges every worker's registry into
  the scrape (rendezvous, like the report).
* ``GET  /v1/traces``   — newest-first summaries of the trace ring buffer
  (``?limit=N`` caps the listing); ``GET /v1/traces/<trace_id>`` returns
  one full span tree.  404 when tracing is disabled.
* ``GET  /alerts``      — a fresh evaluation of every alert rule over the
  live registry (threshold, rate, and multi-window SLO burn), with the
  currently firing subset called out.
* ``POST /v1/schedule`` — body: a :class:`~repro.api.ScheduleRequest` dict
  (``{"program": "gemm:b"}`` at its simplest, optionally with ``priority``
  0-9 and an opaque ``client`` identity); response: the
  :class:`~repro.api.ScheduleResponse` dict.  Identical concurrent requests
  are coalesced; repeats are cache hits.  When the service sheds load
  (queue full or per-client limit) the reply is ``429 Too Many Requests``
  with a ``Retry-After`` header and a machine-readable ``reason``.

Schedule traffic can additionally be written to a **structured access log**
(:class:`JsonAccessLog`): one JSON object per request with a request id,
priority, client identity, queue wait, total duration, outcome, and whether
the response-cache fast lane served it.

The handler threads of :class:`ThreadingHTTPServer` block on the
:class:`~repro.serving.service.ServiceRunner`, whose event loop performs the
actual micro-batching, so HTTP concurrency translates directly into batch
formation and coalescing.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import itertools
import json
import math
import threading
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Dict, IO, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from ..api.session import Session
from ..api.types import (HIGHEST_PRIORITY, LOWEST_PRIORITY, ScheduleRequest)
from ..ir.nodes import Program
from ..observability import (AlertEvaluator, AlertMonitor, PushExporter,
                             default_alert_rules, merge_registry_dicts,
                             render_registry_dict)
from .service import AdmissionError, ServiceConfig, ServiceRunner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .workers import WorkerPool

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Largest accepted request body (16 MiB guards against runaway programs).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Largest accepted ``threads`` value.  Session caches one scheduler and
#: cost model per distinct thread count, so an unbounded client-supplied
#: value would grow server memory without limit.
MAX_REQUEST_THREADS = 256


class JsonAccessLog:
    """A thread-safe JSON-lines access log for schedule traffic.

    One JSON object per request: request id, timestamp, priority, client
    identity, program descriptor, HTTP status, outcome, queue wait, and
    total duration.  ``target`` may be a file path (opened in append mode
    and closed with the log) or any writable text stream (shared, left
    open).
    """

    def __init__(self, target: "Union[str, IO[str]]"):
        self._owns_stream = isinstance(target, str)
        self._stream: "IO[str]" = (open(target, "a", encoding="utf-8")
                                   if isinstance(target, str) else target)
        self._lock = threading.Lock()

    def write(self, entry: Dict[str, Any]) -> None:
        line = json.dumps(entry, sort_keys=True)
        with self._lock:
            self._stream.write(line + "\n")
            self._stream.flush()

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()


def _program_descriptor(program: Any) -> str:
    """A short, log-safe description of a request's program."""
    if isinstance(program, Program):
        return f"ir:{program.name}"
    text = str(program)
    return text if len(text) <= 80 else text[:77] + "..."


class ServingServer:
    """The HTTP front of one session + async scheduling service.

    ``pool`` optionally attaches a :class:`~repro.serving.workers.WorkerPool`
    whose processes serve the micro-batches; the server reports through it
    but does not own it — whoever created the pool closes it.

    ``expose_metrics`` controls the ``/metrics`` route (on by default; the
    scrape itself is read-only and cheap).  ``access_log`` — a path or a
    writable text stream — enables the structured JSON access log for
    ``/v1/schedule`` traffic.
    """

    def __init__(self, session: Session, host: str = "127.0.0.1",
                 port: int = 0, config: Optional[ServiceConfig] = None,
                 pool: "Optional[WorkerPool]" = None,
                 expose_metrics: bool = True,
                 access_log: "Union[None, str, IO[str]]" = None,
                 expose_traces: bool = True,
                 alert_rules=None,
                 alert_interval_s: float = 5.0,
                 push_url: Optional[str] = None,
                 push_interval_s: float = 30.0):
        self.session = session
        self.pool = pool
        self.runner = ServiceRunner(session, config, pool=pool)
        self.metrics = session.metrics
        self.expose_metrics = expose_metrics
        self.tracer = getattr(session, "tracer", None)
        self.expose_traces = expose_traces and self.tracer is not None
        if pool is not None and getattr(pool, "tracer", None) is None:
            # Worker span fragments rejoin the coordinator session's tracer.
            pool.tracer = self.tracer
        service_config = self.runner.service.config
        self.alerts = AlertEvaluator(
            (default_alert_rules(
                max_queue_depth=service_config.max_queue_depth,
                latency_slo_s=service_config.latency_slo_s)
             if alert_rules is None else list(alert_rules)),
            snapshot_fn=self.metrics.to_dict,
            metrics=self.metrics)
        self._alert_monitor = AlertMonitor(self.alerts, alert_interval_s)
        self.push_exporter = (
            PushExporter(push_url, self._push_payload,
                         interval_s=push_interval_s, metrics=self.metrics)
            if push_url else None)
        self.access_log = (JsonAccessLog(access_log)
                           if access_log is not None else None)
        # Request ids: a per-server random prefix plus a monotonic sequence
        # — unique across restarts, orderable within one.
        self._id_prefix = uuid.uuid4().hex[:8]
        self._id_sequence = itertools.count(1)
        handler = _make_handler(self)
        try:
            self._httpd = ThreadingHTTPServer((host, port), handler)
        except Exception:
            # Binding can fail (port in use); don't leak the opened log
            # handle — stop() never runs for a half-constructed server.
            if self.access_log is not None:
                self.access_log.close()
            raise
        self._thread: Optional[threading.Thread] = None
        self._started_at = 0.0
        self._closed = False

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "ServingServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def start(self) -> None:
        """Start the service loop and serve HTTP in a background thread."""
        if self._closed:
            # stop() closed the listening socket for good; serving on it
            # again would accept nothing while looking healthy.
            raise RuntimeError("server was stopped; create a new ServingServer")
        if self._thread is not None:
            return
        self.runner.start()
        self._alert_monitor.start()
        if self.push_exporter is not None:
            self.push_exporter.start()
        self._started_at = time.monotonic()
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repro-serving-http", daemon=True)
        self._thread.start()

    def serve_forever(self) -> None:
        """Start and block until interrupted (the CLI ``serve`` entry)."""
        self.start()
        try:
            self._thread.join()
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._closed = True
        self._httpd.shutdown()
        self._thread.join()
        self._httpd.server_close()
        self._alert_monitor.stop()
        if self.push_exporter is not None:
            self.push_exporter.stop()
        self.runner.stop()
        if self.access_log is not None:
            self.access_log.close()
        self._thread = None

    # -- route implementations ---------------------------------------------------

    def handle_healthz(self) -> Tuple[int, Dict[str, Any]]:
        return 200, {"status": "ok",
                     "uptime_s": round(time.monotonic() - self._started_at, 3)}

    def handle_report(self, include_workers: bool = False
                      ) -> Tuple[int, Dict[str, Any]]:
        payload = self.session.report().to_dict()
        payload["service"] = self.runner.stats.to_dict()
        payload["service"]["policy"] = self.runner.service.config.policy
        payload["admission"] = self.runner.service.admission.stats.to_dict()
        if self.pool is not None:
            if include_workers:
                # Full scatter-gather: one session report per worker process
                # plus the merged aggregate (may block while busy workers
                # reach the rendezvous barrier).
                payload["pool"] = self.pool.report()
            else:
                payload["pool"] = {"num_workers": self.pool.num_workers,
                                   **self.pool.stats.to_dict()}
        states = self.alerts.states()
        payload["alerts"] = {
            "firing": sorted(state.name for state in states if state.firing),
            "rules": len(self.alerts.rules),
        }
        return 200, payload

    def handle_alerts(self) -> Tuple[int, Dict[str, Any]]:
        """``GET /alerts``: evaluate every rule over a fresh snapshot."""
        states = self.alerts.sample_and_evaluate()
        return 200, {
            "alerts": [state.to_dict() for state in states],
            "firing": sorted(state.name for state in states if state.firing),
            "rules": [rule.to_dict() for rule in self.alerts.rules],
        }

    def handle_traces(self, limit: Optional[int] = None
                      ) -> Tuple[int, Dict[str, Any]]:
        """``GET /v1/traces``: newest-first trace summaries."""
        if not self.expose_traces:
            return 404, {"error": "tracing is disabled"}
        return 200, {"traces": self.tracer.traces(limit),
                     "capacity": self.tracer.capacity,
                     "stored": self.tracer.stored}

    def handle_trace(self, trace_id: str) -> Tuple[int, Dict[str, Any]]:
        """``GET /v1/traces/<trace_id>``: one full span tree."""
        if not self.expose_traces:
            return 404, {"error": "tracing is disabled"}
        record = self.tracer.get(trace_id)
        if record is None:
            return 404, {"error": f"unknown trace {trace_id!r}"}
        return 200, record.to_dict()

    def _push_payload(self) -> Dict[str, Any]:
        """One push-exporter datagram: node identity, registry snapshot
        (best-effort pool-merged), and the currently firing alerts."""
        import os
        import sys
        states = self.alerts.sample_and_evaluate()
        snapshot = self.metrics.to_dict()
        if self.pool is not None:
            try:
                gathered = self.pool.metrics()
                snapshot = merge_registry_dicts(
                    [snapshot] + [worker_snapshot for _, worker_snapshot
                                  in sorted(gathered["per_worker"].items())])
            except Exception:  # noqa: BLE001 - push what we have
                pass
        try:
            import repro
            version = getattr(repro, "__version__", "unknown")
        except Exception:  # noqa: BLE001
            version = "unknown"
        return {
            "node": {"version": version,
                     "python": "%d.%d.%d" % sys.version_info[:3],
                     "pid": os.getpid(),
                     "address": self.address},
            "ts": time.time(),
            "metrics": snapshot,
            "alerts": [state.to_dict() for state in states if state.firing],
        }

    def render_metrics(self, include_workers: bool = False) -> str:
        """The Prometheus text scrape body of ``GET /metrics``.

        The coordinator registry (service queue/latency/admission plus the
        coordinator session's cache traffic) renders directly; with a pool
        and ``include_workers``, every worker's registry is gathered
        (rendezvous) and merged in, so per-worker cache and pass counters
        aggregate into the scrape.
        """
        if self.pool is not None and include_workers:
            gathered = self.pool.metrics()
            snapshots = [self.metrics.to_dict()]
            snapshots.extend(snapshot for _, snapshot
                             in sorted(gathered["per_worker"].items()))
            return render_registry_dict(merge_registry_dicts(snapshots))
        return self.metrics.render()

    def handle_metrics(self, include_workers: bool = False
                       ) -> Tuple[int, str, str]:
        """Returns ``(status, content_type, body)`` for ``GET /metrics``."""
        if not self.expose_metrics:
            return (404, "application/json",
                    json.dumps({"error": "metrics endpoint is disabled"}))
        return 200, PROMETHEUS_CONTENT_TYPE, self.render_metrics(include_workers)

    def _next_request_id(self) -> str:
        return f"{self._id_prefix}-{next(self._id_sequence)}"

    def _log_schedule(self, request_id: str, body: Dict[str, Any],
                      request: Optional[ScheduleRequest], status: int,
                      outcome: str, started: float,
                      queue_wait_s: Optional[float],
                      coalesced: Optional[bool],
                      trace_id: Optional[str] = None,
                      fast_lane: Optional[bool] = None) -> None:
        if self.access_log is None:
            return
        self.access_log.write({
            "ts": round(time.time(), 6),
            "request_id": request_id,
            "trace_id": trace_id,
            "route": "/v1/schedule",
            "program": _program_descriptor(
                request.program if request is not None
                else body.get("program")),
            "priority": (request.priority if request is not None
                         else body.get("priority")),
            "client": (request.client if request is not None
                       else body.get("client")),
            "status": status,
            "outcome": outcome,
            "queue_wait_s": (round(queue_wait_s, 6)
                             if queue_wait_s is not None else None),
            "duration_s": round(time.monotonic() - started, 6),
            "coalesced": coalesced,
            "fast_lane": fast_lane,
        })

    def handle_schedule(self, body: Dict[str, Any]
                        ) -> "Tuple[int, Dict[str, Any] | str]":
        started = time.monotonic()
        request_id = self._next_request_id()
        # Derived, not generated: the service derives the same id from the
        # request id, so the access log cross-references the trace ring
        # buffer even for requests that shed or fail before scheduling.
        trace_id = (self.tracer.trace_id_for(request_id)
                    if self.tracer is not None and self.tracer.enabled
                    else None)

        def done(status: int, payload: "Dict[str, Any] | str", outcome: str,
                 request: Optional[ScheduleRequest] = None,
                 queue_wait_s: Optional[float] = None,
                 coalesced: Optional[bool] = None,
                 fast_lane: Optional[bool] = None
                 ) -> "Tuple[int, Dict[str, Any] | str]":
            self._log_schedule(request_id, body, request, status, outcome,
                               started, queue_wait_s, coalesced,
                               trace_id=trace_id, fast_lane=fast_lane)
            return status, payload

        try:
            request = ScheduleRequest.from_dict(body)
        except (KeyError, TypeError, ValueError) as error:
            return done(400, {"error": f"invalid schedule request: {error}"},
                        "invalid")
        if request.threads is not None and not (
                isinstance(request.threads, int)
                and 1 <= request.threads <= MAX_REQUEST_THREADS):
            return done(400, {"error": f"threads must be an integer in "
                                       f"[1, {MAX_REQUEST_THREADS}]"},
                        "invalid", request)
        if not HIGHEST_PRIORITY <= request.priority <= LOWEST_PRIORITY:
            return done(400, {"error": f"priority must be an integer in "
                                       f"[{HIGHEST_PRIORITY}, "
                                       f"{LOWEST_PRIORITY}] "
                                       f"({HIGHEST_PRIORITY} most urgent)"},
                        "invalid", request)
        if request.deadline_s is not None and not (
                isinstance(request.deadline_s, (int, float))
                and not isinstance(request.deadline_s, bool)
                and math.isfinite(request.deadline_s)):
            # A deadline may already be in the past (edf serves it most
            # urgently), but it must at least be a finite number.
            return done(400, {"error": "deadline_s must be a finite number "
                                       "of seconds"},
                        "invalid", request)
        try:
            response, timing = self.runner.schedule_timed(
                request, request_id=request_id)
        except AdmissionError as error:
            # Load shedding is not a client mistake: 429 plus a retry hint,
            # so well-behaved clients back off instead of hammering.
            return done(429, {"error": str(error), "reason": error.reason,
                              "retry_after_s": error.retry_after_s},
                        "shed", request)
        except (ValueError, TypeError, KeyError) as error:
            # Unknown workloads/schedulers raise RegistryError (a KeyError):
            # the request was malformed, not the server.
            return done(400, {"error": str(error)}, "invalid", request)
        except (asyncio.CancelledError, concurrent.futures.CancelledError):
            # Server shutdown cancelled the in-flight future; CancelledError
            # is a BaseException and would otherwise kill the handler thread
            # without sending any response.
            return done(503, {"error": "server is shutting down"},
                        "cancelled", request)
        except Exception as error:  # noqa: BLE001 - surfaced as HTTP 500
            return done(500, {"error": f"{type(error).__name__}: {error}"},
                        "error", request)
        # Pool and fast-lane responses arrive as pre-encoded JSON text (the
        # worker process or the response cache serialized them); reply with
        # those bytes verbatim instead of re-encoding on the handler thread.
        encode = getattr(response, "to_json", None)
        payload = encode() if encode is not None else response.to_dict()
        return done(200, payload, "ok", request,
                    queue_wait_s=timing.queue_wait_s,
                    coalesced=timing.coalesced,
                    fast_lane=timing.fast_lane)


def _make_handler(server: ServingServer):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serving/0.1"
        #: Socket timeout (applied by StreamRequestHandler.setup): a client
        #: that under-sends its declared body must not pin a handler thread
        #: forever (slowloris).
        timeout = 30

        def log_message(self, format: str, *args: Any) -> None:
            pass  # quiet by default; traffic is visible through /v1/report

        def _reply(self, status: int, payload: "Dict[str, Any] | str",
                   close: bool = False) -> None:
            # A str payload is pre-encoded JSON (the worker-pool fast path).
            body = (payload if isinstance(payload, str)
                    else json.dumps(payload)).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            if status == 429 and isinstance(payload, dict) \
                    and "retry_after_s" in payload:
                # Retry-After takes whole seconds; math.ceil (not round(),
                # whose banker's rounding maps 2.5 to 2) so hints always
                # round up and "0" never tells clients to hammer immediately.
                self.send_header(
                    "Retry-After",
                    str(max(1, math.ceil(payload["retry_after_s"]))))
            if close:
                # The request body was not consumed: keeping the connection
                # alive would desync HTTP/1.1 (unread bytes parse as the
                # next request line).
                self.send_header("Connection", "close")
                self.close_connection = True
            self.end_headers()
            self.wfile.write(body)

        def _reply_text(self, status: int, content_type: str,
                        body_text: str) -> None:
            body = body_text.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        @staticmethod
        def _workers_flag(query: Dict[str, list]) -> bool:
            flag = query.get("workers", [""])[-1].strip().lower()
            return flag in ("1", "true", "yes", "on")

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            parts = urlsplit(self.path)
            if parts.path == "/healthz":
                self._reply(*server.handle_healthz())
            elif parts.path == "/v1/report":
                include_workers = self._workers_flag(parse_qs(parts.query))
                self._reply(*server.handle_report(include_workers))
            elif parts.path == "/metrics":
                include_workers = self._workers_flag(parse_qs(parts.query))
                self._reply_text(*server.handle_metrics(include_workers))
            elif parts.path == "/alerts":
                self._reply(*server.handle_alerts())
            elif parts.path == "/v1/traces":
                query = parse_qs(parts.query)
                raw_limit = query.get("limit", [""])[-1].strip()
                try:
                    limit = int(raw_limit) if raw_limit else None
                except ValueError:
                    self._reply(400, {"error": "limit must be an integer"})
                    return
                self._reply(*server.handle_traces(limit))
            elif parts.path.startswith("/v1/traces/"):
                trace_id = parts.path[len("/v1/traces/"):]
                self._reply(*server.handle_trace(trace_id))
            else:
                self._reply(404, {"error": f"unknown path {self.path!r}"})

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            if self.path != "/v1/schedule":
                # The body stays unread on this branch too: close so the
                # next keep-alive request does not parse body bytes.
                self._reply(404, {"error": f"unknown path {self.path!r}"},
                            close=True)
                return
            try:
                length = int(self.headers.get("Content-Length") or 0)
            except ValueError:
                self._reply(400, {"error": "malformed Content-Length header"},
                            close=True)
                return
            if length <= 0 or length > MAX_BODY_BYTES:
                self._reply(400, {"error": "missing or oversized request body"},
                            close=True)
                return
            try:
                raw = self.rfile.read(length)
            except (TimeoutError, OSError):
                # The client declared more body than it sent within the
                # socket timeout.
                self._reply(408, {"error": "timed out reading request body"},
                            close=True)
                return
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                self._reply(400, {"error": f"invalid JSON body: {error}"})
                return
            if not isinstance(body, dict):
                self._reply(400, {"error": "request body must be a JSON object"})
                return
            self._reply(*server.handle_schedule(body))

    return Handler

"""The asyncio scheduling service core.

:class:`SchedulingService` turns a :class:`~repro.api.Session` into an async
request processor:

* **request queue** — ``schedule()`` coroutines enqueue their request and
  await a future; a single batcher task drains the queue.
* **micro-batching** — the batcher collects up to
  :attr:`ServiceConfig.max_batch_size` requests (waiting at most
  :attr:`ServiceConfig.batch_window_s` for stragglers) and runs them through
  :meth:`repro.api.Session.schedule_batch` in a worker thread, so one cache
  and one tuning database serve the whole batch.
* **coalescing** — identical in-flight requests (same program content hash,
  parameters, scheduler, threads, normalize flag) share one future: burst
  duplicates cost a single scheduler invocation, counted on
  ``Session.report().coalesced_requests``.

:class:`ServiceRunner` hosts the service on an event loop in a background
thread and exposes a blocking ``schedule()`` for synchronous callers (the
HTTP endpoint, benchmarks, tests).
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..api.hashing import fingerprint, program_content_hash
from ..api.session import Session
from ..api.types import ScheduleRequest, ScheduleResponse
from ..ir.nodes import Program


@dataclass
class ServiceConfig:
    """Tunables of the async scheduling service."""

    #: Largest batch handed to ``Session.schedule_batch`` at once.
    max_batch_size: int = 16
    #: How long the batcher waits for more requests after the first arrives.
    batch_window_s: float = 0.01
    #: Thread-pool width of each ``schedule_batch`` call (None: session default).
    max_workers: Optional[int] = None


@dataclass
class ServiceStats:
    """What the service did since it started."""

    requests: int = 0
    coalesced: int = 0
    batches: int = 0
    scheduled: int = 0
    errors: int = 0
    largest_batch: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "coalesced": self.coalesced,
            "batches": self.batches,
            "scheduled": self.scheduled,
            "errors": self.errors,
            "largest_batch": self.largest_batch,
        }


def request_fingerprint(request: ScheduleRequest) -> str:
    """Content hash identifying requests that must produce identical responses.

    Programs given as IR hash by structure (name-insensitive), so two
    clients submitting the same kernel coalesce even if they named it
    differently; registry names and source text hash as written.  The label
    is excluded: it only affects tuning provenance, and tune requests are
    rejected by the service anyway.
    """
    program = request.program
    if isinstance(program, Program):
        program_key = program_content_hash(program)
    else:
        program_key = str(program)
    return fingerprint({
        "program": program_key,
        # None (use registry defaults) and {} (schedule with no bindings)
        # resolve differently and must not coalesce onto one another.
        "parameters": (dict(request.parameters)
                       if request.parameters is not None else None),
        "scheduler": request.scheduler,
        "threads": request.threads,
        "normalize": request.normalize,
        # Different normalization pipelines produce different schedules;
        # they must never ride one another's in-flight request.
        "pipeline": request.pipeline,
    })


@dataclass
class _Pending:
    """One queued request plus the future its submitters await."""

    key: str
    request: ScheduleRequest
    future: "asyncio.Future[ScheduleResponse]" = field(repr=False, default=None)


class SchedulingService:
    """Async facade over one session: queue, micro-batching, coalescing."""

    def __init__(self, session: Session, config: Optional[ServiceConfig] = None):
        self.session = session
        self.config = config or ServiceConfig()
        self.stats = ServiceStats()
        self._queue: "Optional[asyncio.Queue[_Pending]]" = None
        self._inflight: Dict[str, "asyncio.Future[ScheduleResponse]"] = {}
        self._batcher: Optional[asyncio.Task] = None
        self._running = False

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        if self._running:
            return
        self._queue = asyncio.Queue()
        self._running = True
        self._batcher = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        for future in self._inflight.values():
            if not future.done():
                future.cancel()
        self._inflight.clear()

    # -- submission --------------------------------------------------------------

    async def schedule(self, request: ScheduleRequest) -> ScheduleResponse:
        """Submit one request; awaits its (possibly coalesced) response."""
        if not self._running:
            raise RuntimeError("service is not running; call start() first")
        if request.tune:
            raise ValueError("tune requests mutate the database and are not "
                             "served; tune through the session directly")
        self.stats.requests += 1
        key = request_fingerprint(request)
        existing = self._inflight.get(key)
        if existing is not None:
            # Coalesce: ride the identical in-flight request.  The response
            # program is copied so concurrent consumers never share IR.
            self.stats.coalesced += 1
            self.session.record_coalesced()
            response = await asyncio.shield(existing)
            return self._reissue(response, request)
        future: "asyncio.Future[ScheduleResponse]" = \
            asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        await self._queue.put(_Pending(key, request, future))
        return await asyncio.shield(future)

    @staticmethod
    def _reissue(response: ScheduleResponse,
                 request: ScheduleRequest) -> ScheduleResponse:
        copied = response.result.copy()
        # Match the sequential cache-hit path: the served program keeps the
        # *rider's* name, not the coalescing leader's (fingerprints are
        # name-insensitive, so the two can differ for IR-program requests).
        if isinstance(request.program, Program):
            copied.program.name = request.program.name
        # ``from_cache`` keeps its documented meaning (served from the
        # content-addressed cache): a rider of a cold leader was computed,
        # not cache-served — coalescing is counted on the session report.
        return ScheduleResponse(
            request=request, scheduler=response.scheduler,
            program=copied.program, result=copied,
            runtime_s=response.runtime_s, normalized=response.normalized,
            input_hash=response.input_hash,
            canonical_hash=response.canonical_hash,
            from_cache=response.from_cache,
            normalization_cache_hit=response.normalization_cache_hit)

    # -- the batcher -------------------------------------------------------------

    async def _collect_batch(self) -> List[_Pending]:
        batch = [await self._queue.get()]
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.batch_window_s
        while len(batch) < self.config.max_batch_size:
            timeout = deadline - loop.time()
            if timeout <= 0:
                break
            try:
                batch.append(await asyncio.wait_for(self._queue.get(), timeout))
            except asyncio.TimeoutError:
                break
        return batch

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = await self._collect_batch()
            self.stats.batches += 1
            self.stats.largest_batch = max(self.stats.largest_batch, len(batch))
            requests = [pending.request for pending in batch]
            try:
                responses = await loop.run_in_executor(
                    None, self._schedule_batch, requests)
            except Exception as error:  # noqa: BLE001 - forwarded to callers
                # Batch-level failure (e.g. the executor itself); per-item
                # failures are returned in-band by return_exceptions below.
                self.stats.errors += len(batch)
                for pending in batch:
                    self._inflight.pop(pending.key, None)
                    if not pending.future.done():
                        pending.future.set_exception(error)
                continue
            for pending, response in zip(batch, responses):
                self._inflight.pop(pending.key, None)
                if isinstance(response, Exception):
                    # One invalid request must not fail its batchmates.
                    self.stats.errors += 1
                    if not pending.future.done():
                        pending.future.set_exception(response)
                else:
                    self.stats.scheduled += 1
                    if not pending.future.done():
                        pending.future.set_result(response)

    def _schedule_batch(self, requests: List[ScheduleRequest]
                        ) -> List[ScheduleResponse]:
        return self.session.schedule_batch(
            requests, max_workers=self.config.max_workers,
            return_exceptions=True)


class ServiceRunner:
    """A :class:`SchedulingService` on an event loop in a background thread.

    Synchronous consumers (the HTTP endpoint, scripts, tests) call
    :meth:`schedule`, which blocks the calling thread while the service
    batches and coalesces on its own loop.
    """

    def __init__(self, session: Session, config: Optional[ServiceConfig] = None):
        self.session = session
        self.service = SchedulingService(session, config)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    def __enter__(self) -> "ServiceRunner":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def stats(self) -> ServiceStats:
        return self.service.stats

    def start(self) -> None:
        if self._thread is not None:
            return
        self._loop = asyncio.new_event_loop()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            self._loop.call_soon(self._started.set)
            self._loop.run_forever()

        self._thread = threading.Thread(target=run, name="repro-serving",
                                        daemon=True)
        self._thread.start()
        self._started.wait()
        asyncio.run_coroutine_threadsafe(self.service.start(), self._loop).result()

    def stop(self) -> None:
        if self._thread is None:
            return
        asyncio.run_coroutine_threadsafe(self.service.stop(), self._loop).result()
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._loop.close()
        self._thread = None
        self._loop = None

    def schedule(self, request: ScheduleRequest,
                 timeout: Optional[float] = None) -> ScheduleResponse:
        """Blocking submit of one request through the async service."""
        if self._loop is None:
            raise RuntimeError("runner is not started")
        future = asyncio.run_coroutine_threadsafe(
            self.service.schedule(request), self._loop)
        return future.result(timeout)

    def schedule_many(self, requests: List[ScheduleRequest],
                      timeout: Optional[float] = None) -> List[ScheduleResponse]:
        """Submit many requests concurrently; returns responses in order."""
        if self._loop is None:
            raise RuntimeError("runner is not started")

        async def gather() -> Tuple[ScheduleResponse, ...]:
            return await asyncio.gather(
                *(self.service.schedule(request) for request in requests))

        future = asyncio.run_coroutine_threadsafe(gather(), self._loop)
        return list(future.result(timeout))

"""The asyncio scheduling service core.

:class:`SchedulingService` turns a :class:`~repro.api.Session` into an async
request processor:

* **policy-ordered queue** — ``schedule()`` coroutines enqueue their request
  and await a future; a single batcher task drains the queue in the order of
  the configured :class:`~repro.serving.policy.QueuePolicy`
  (:attr:`ServiceConfig.policy`).  The default, ``strict-priority``, drains
  strictly by :attr:`~repro.api.ScheduleRequest.priority` (0 most urgent,
  FIFO within one priority) so urgent requests overtake queued bulk traffic;
  ``weighted-fair``, ``edf``, and ``aging`` trade that for starvation-freedom
  or deadline awareness.  Every ordering decision is counted on
  ``repro_queue_policy_decisions_total{policy,class}`` and per-policy latency
  lands in ``repro_policy_request_latency_seconds{policy,class}``.
* **admission control** — an :class:`AdmissionController` sheds load before
  it queues: a bounded queue depth and optional per-client in-flight limits
  reject excess requests with a typed :class:`AdmissionError` (the HTTP
  layer maps it to ``429 Too Many Requests`` with a retry hint).
* **micro-batching** — the batcher collects up to
  :attr:`ServiceConfig.max_batch_size` requests (waiting at most
  :attr:`ServiceConfig.batch_window_s` for stragglers) and runs them through
  :meth:`repro.api.Session.schedule_batch` in a worker thread — or scatters
  them over a :class:`~repro.serving.workers.WorkerPool` when one is
  attached — so one cache and one tuning database serve the whole batch.
* **response fast lane** — before a request is admitted or queued, the
  service probes the session's response-level cache
  (:meth:`repro.api.Session.probe_response`); a hit returns the final,
  pre-encoded response bytes straight to the caller — no queue, no batch,
  no IR, no JSON parse — with a single sampled root span instead of the
  slow path's full span tree.  Entries are written back after each batch
  from responses whose normalization and schedule both came from cache, so
  the fast lane is bit-identical to what the slow path would have served.
* **coalescing** — identical in-flight requests (same program content hash,
  parameters, scheduler, threads, normalize flag) share one future: burst
  duplicates cost a single scheduler invocation, counted on
  ``Session.report().coalesced_requests``.  Priority and client identity do
  not split the coalescing key — they affect queue order and admission, not
  the scheduling outcome.

:class:`ServiceRunner` hosts the service on an event loop in a background
thread and exposes a blocking ``schedule()`` for synchronous callers (the
HTTP endpoint, benchmarks, tests).
"""

from __future__ import annotations

import asyncio
import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..api.hashing import request_fingerprint
from ..api.session import Session
from ..api.types import ScheduleRequest, ScheduleResponse
from ..ir.nodes import Program
from ..observability import MetricsRegistry
from .policy import AdaptiveBatcher, create_policy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (workers use api)
    from .workers import WorkerPool


@dataclass
class ServiceConfig:
    """Tunables of the async scheduling service."""

    #: Largest batch handed to ``Session.schedule_batch`` at once.
    max_batch_size: int = 16
    #: How long the batcher waits for more requests after the first arrives.
    batch_window_s: float = 0.01
    #: Thread-pool width of each ``schedule_batch`` call (None: session default).
    max_workers: Optional[int] = None
    #: Most requests allowed in the service queue before load shedding
    #: rejects new arrivals.  0 (the default) is unbounded — identical to
    #: the pre-admission behavior, so existing programmatic consumers are
    #: unaffected; the ``serve`` CLI applies an ops default of 256.
    max_queue_depth: int = 0
    #: Most in-flight requests per ``ScheduleRequest.client`` identity
    #: (0: unlimited; requests without a client are never client-limited).
    max_client_inflight: int = 0
    #: Retry hint attached to admission rejections (HTTP ``Retry-After``).
    retry_after_s: float = 0.05
    #: Serve repeat requests from the session's response-level cache,
    #: bypassing queueing and batching entirely (the warm-path fast lane).
    #: Responses are bit-identical to the slow path's, so this is safe to
    #: leave on; disable to force every request through the full pipeline.
    fast_lane: bool = True
    #: Queue-scheduling policy (a name registered with
    #: :func:`~repro.serving.policy.register_policy`): ``strict-priority``
    #: (the historic default), ``weighted-fair``, ``edf``, or ``aging``.
    policy: str = "strict-priority"
    #: ``weighted-fair`` per-class weight overrides (priority class ->
    #: positive weight; None keeps the default ``10 - priority``).
    policy_weights: Optional[Dict[int, float]] = None
    #: ``aging``: seconds of queue wait worth one priority class of boost.
    aging_interval_s: float = 0.5
    #: Close the loop from live latency onto batching/admission knobs
    #: (see :class:`~repro.serving.policy.AdaptiveBatcher`).
    adaptive: bool = False
    #: Target end-to-end latency SLO (adaptive batching compares its p95
    #: against this; the default alert rules burn against it too).
    latency_slo_s: float = 0.25
    #: Seconds between adaptive-batcher adaptation steps.
    adaptive_interval_s: float = 0.5


class ServiceStats:
    """What the service did since it started.

    The counters live in a :class:`~repro.observability.MetricsRegistry`
    (the ``repro_service_*`` instruments scraped at ``/metrics``); this
    class is the backward-compatible view ``/v1/report`` renders from, so
    the two are fed by the same increments and cannot drift.  Registry
    counters are cumulative across service generations (Prometheus
    semantics: counters never reset within a process), so each view
    snapshots its construction-time values and reports deltas — a fresh
    service over a reused session still starts its report at zero.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        metrics = metrics if metrics is not None else MetricsRegistry()
        self._requests = metrics.counter(
            "repro_service_requests_total",
            "Requests admitted into the scheduling service.")
        self._coalesced = metrics.counter(
            "repro_service_coalesced_total",
            "Requests that rode an identical in-flight request.")
        self._batches = metrics.counter(
            "repro_service_batches_total", "Micro-batches executed.")
        self._scheduled = metrics.counter(
            "repro_service_scheduled_total",
            "Requests resolved with a schedule response.")
        self._fast_lane = metrics.counter(
            "repro_service_fast_lane_total",
            "Requests served from the response-level cache fast lane.")
        self._errors = metrics.counter(
            "repro_service_errors_total",
            "Requests resolved with an exception.")
        self._rejected = metrics.counter(
            "repro_service_rejected_total",
            "Requests shed by admission control.")
        self._largest_batch = metrics.gauge(
            "repro_service_largest_batch",
            "High-water mark of the micro-batch size.")
        self._base = {
            "requests": self._requests.value,
            "coalesced": self._coalesced.value,
            "batches": self._batches.value,
            "scheduled": self._scheduled.value,
            "fast_lane": self._fast_lane.value,
            "errors": self._errors.value,
            "rejected": self._rejected.value,
        }

    # -- recording (used by the service) -----------------------------------------

    def record_request(self) -> None:
        self._requests.inc()

    def record_coalesced(self) -> None:
        self._coalesced.inc()

    def record_batch(self, size: int) -> None:
        self._batches.inc()
        self._largest_batch.set_max(size)

    def record_scheduled(self) -> None:
        self._scheduled.inc()

    def record_fast_lane(self) -> None:
        self._fast_lane.inc()

    def record_errors(self, count: int = 1) -> None:
        self._errors.inc(count)

    def record_rejected(self) -> None:
        self._rejected.inc()

    # -- the read-only view -------------------------------------------------------

    @property
    def requests(self) -> int:
        return int(self._requests.value - self._base["requests"])

    @property
    def coalesced(self) -> int:
        return int(self._coalesced.value - self._base["coalesced"])

    @property
    def batches(self) -> int:
        return int(self._batches.value - self._base["batches"])

    @property
    def scheduled(self) -> int:
        return int(self._scheduled.value - self._base["scheduled"])

    @property
    def fast_lane(self) -> int:
        return int(self._fast_lane.value - self._base["fast_lane"])

    @property
    def errors(self) -> int:
        return int(self._errors.value - self._base["errors"])

    @property
    def rejected(self) -> int:
        return int(self._rejected.value - self._base["rejected"])

    @property
    def largest_batch(self) -> int:
        return int(self._largest_batch.value)

    def to_dict(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "coalesced": self.coalesced,
            "batches": self.batches,
            "scheduled": self.scheduled,
            "fast_lane": self.fast_lane,
            "errors": self.errors,
            "rejected": self.rejected,
            "largest_batch": self.largest_batch,
        }


class AdmissionError(RuntimeError):
    """A request the service refused to queue (load shedding).

    ``reason`` is machine-readable (``"queue-full"`` or ``"client-limit"``)
    and ``retry_after_s`` hints when retrying is sensible; the HTTP layer
    turns both into a ``429`` response with a ``Retry-After`` header.
    """

    def __init__(self, reason: str, message: str, retry_after_s: float):
        super().__init__(message)
        self.reason = reason
        self.retry_after_s = retry_after_s


class AdmissionStats:
    """What the admission controller decided since the service started.

    Backed by the ``repro_admission_*`` registry instruments (admitted
    counter plus a shed counter labelled by reason); ``/v1/report`` renders
    this view, fed by the same increments as ``/metrics``.  Like
    :class:`ServiceStats`, the view reports deltas from its construction so
    a fresh controller over a reused registry starts at zero.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        metrics = metrics if metrics is not None else MetricsRegistry()
        self._admitted = metrics.counter(
            "repro_admission_admitted_total",
            "Requests admitted into the service queue.")
        self._shed = metrics.counter(
            "repro_admission_shed_total",
            "Requests shed by admission control, by reason.", ("reason",))
        self._base = {
            "admitted": self._admitted.value,
            "queue-full": self._shed.labels("queue-full").value,
            "client-limit": self._shed.labels("client-limit").value,
        }

    def record_admitted(self) -> None:
        self._admitted.inc()

    def record_shed(self, reason: str) -> None:
        self._shed.labels(reason).inc()

    @property
    def admitted(self) -> int:
        return int(self._admitted.value - self._base["admitted"])

    @property
    def rejected_queue_full(self) -> int:
        return int(self._shed.labels("queue-full").value
                   - self._base["queue-full"])

    @property
    def rejected_client_limit(self) -> int:
        return int(self._shed.labels("client-limit").value
                   - self._base["client-limit"])

    def to_dict(self) -> Dict[str, int]:
        return {
            "admitted": self.admitted,
            "rejected_queue_full": self.rejected_queue_full,
            "rejected_client_limit": self.rejected_client_limit,
        }


class AdmissionController:
    """Decides whether a request may enter the service queue.

    Two independent limits, both configured on :class:`ServiceConfig`:

    * **queue depth** — once ``max_queue_depth`` requests are queued, new
      *work-creating* requests are shed.  Coalescing riders are exempt: a
      rider attaches to an in-flight schedule and adds nothing to the queue,
      so rejecting it would shed load the service has already accepted.
    * **per-client in-flight** — at most ``max_client_inflight`` requests
      (queued, running, or riding) per :attr:`ScheduleRequest.client`
      identity, so one client cannot monopolize the queue.  Requests that
      carry no client identity are not client-limited.

    All calls happen on the service's event loop, so the controller needs no
    locking; its counters are plain ints safe to read from other threads.
    """

    def __init__(self, config: ServiceConfig,
                 metrics: Optional[MetricsRegistry] = None):
        self.config = config
        self.stats = AdmissionStats(metrics)
        self._client_inflight: Dict[str, int] = {}

    def admit(self, request: ScheduleRequest, queue_depth: int,
              rider: bool) -> None:
        """Admit or raise :class:`AdmissionError`; admitted requests must be
        paired with exactly one :meth:`release`."""
        config = self.config
        client = request.client
        if client is not None and config.max_client_inflight > 0:
            inflight = self._client_inflight.get(client, 0)
            if inflight >= config.max_client_inflight:
                self.stats.record_shed("client-limit")
                raise AdmissionError(
                    "client-limit",
                    f"client {client!r} already has {inflight} requests "
                    f"in flight (limit {config.max_client_inflight})",
                    config.retry_after_s)
        if not rider and config.max_queue_depth > 0 \
                and queue_depth >= config.max_queue_depth:
            self.stats.record_shed("queue-full")
            raise AdmissionError(
                "queue-full",
                f"service queue is full ({queue_depth} requests, "
                f"limit {config.max_queue_depth})",
                config.retry_after_s)
        self.stats.record_admitted()
        if client is not None:
            self._client_inflight[client] = \
                self._client_inflight.get(client, 0) + 1

    def release(self, request: ScheduleRequest) -> None:
        """Return an admitted request's per-client slot."""
        client = request.client
        if client is None:
            return
        remaining = self._client_inflight.get(client, 0) - 1
        if remaining > 0:
            self._client_inflight[client] = remaining
        else:
            self._client_inflight.pop(client, None)

    def client_inflight(self, client: str) -> int:
        return self._client_inflight.get(client, 0)




@dataclass
class RequestTiming:
    """Per-request serving timings (returned by ``schedule_timed``).

    ``queue_wait_s`` is the time the request's queue entry (or, for a
    coalesced rider, its leader's) spent queued before a batch claimed it;
    ``total_s`` is end-to-end from admission to response.
    """

    total_s: float = 0.0
    queue_wait_s: float = 0.0
    coalesced: bool = False
    fast_lane: bool = False
    trace_id: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {"total_s": self.total_s, "queue_wait_s": self.queue_wait_s,
                "coalesced": self.coalesced, "fast_lane": self.fast_lane,
                "trace_id": self.trace_id}


@dataclass
class _Pending:
    """One queued request plus the future its submitters await.

    ``best_key`` is the best (smallest) policy sort key any coalesced rider
    has contributed — ``best_priority`` keeps the human-readable twin for
    traces — and ``claimed`` marks the entry once a batch picked it up,
    so stale duplicate queue entries (left behind by re-prioritization) are
    skipped on pop.  ``enqueued_at`` / ``claimed_at`` (event-loop clock)
    feed the queue-wait metrics and access logs.
    """

    key: str
    request: ScheduleRequest
    future: "asyncio.Future[ScheduleResponse]" = field(repr=False, default=None)
    best_priority: int = 0
    best_key: Tuple[float, ...] = (0.0,)
    claimed: bool = False
    enqueued_at: float = 0.0
    claimed_at: float = 0.0
    # Wall-clock twins of the loop-clock stamps above: trace spans use
    # ``time.time()`` so coordinator and worker spans share one timeline.
    enqueued_wall: float = 0.0
    claimed_wall: float = 0.0


class SchedulingService:
    """Async facade over one session: priority queue, admission control,
    micro-batching, coalescing.

    ``pool`` optionally attaches a :class:`~repro.serving.workers.WorkerPool`:
    micro-batches are then scattered over worker processes instead of the
    session's thread pool, with identical queueing/coalescing/error
    semantics (the pool's ``schedule_batch`` has the same in-band-exception
    contract as ``Session.schedule_batch(return_exceptions=True)``).
    """

    def __init__(self, session: Session, config: Optional[ServiceConfig] = None,
                 pool: "Optional[WorkerPool]" = None):
        self.session = session
        self.config = config or ServiceConfig()
        self.pool = pool
        #: All service instruments live on the session's registry, so one
        #: ``/metrics`` scrape covers session, cache, and service.  Sessions
        #: are duck-typed here (tests stub them), so a missing registry
        #: falls back to a private one.
        metrics = getattr(session, "metrics", None)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: The session's tracer (sessions are duck-typed in tests; a stub
        #: without one simply serves untraced).
        self._tracer = getattr(session, "tracer", None)
        #: Fallback request-id source for programmatic callers that don't
        #: pass one (the HTTP layer always does).
        self._local_ids = itertools.count(1)
        self.stats = ServiceStats(self.metrics)
        self.admission = AdmissionController(self.config, self.metrics)
        self._queue_depth_gauge = self.metrics.gauge(
            "repro_service_queue_depth",
            "Live requests in the service queue (stale entries excluded).")
        self._latency_histogram = self.metrics.histogram(
            "repro_request_latency_seconds",
            "End-to-end latency of admitted requests by priority class.",
            ("priority",))
        self._phase_histogram = self.metrics.histogram(
            "repro_request_phase_seconds",
            "Time spent per serving phase (queue wait, batch formation, "
            "schedule execution).", ("phase",))
        #: The queue-ordering policy.  Raises PolicyError for unknown names
        #: at construction, not at first request.
        self.policy = create_policy(self.config.policy, self.config)
        self._policy_decisions = self.metrics.counter(
            "repro_queue_policy_decisions_total",
            "Queue-ordering decisions, by policy and priority class.",
            ("policy", "class"))
        self._policy_latency = self.metrics.histogram(
            "repro_policy_request_latency_seconds",
            "End-to-end latency of queued (non-fast-lane) requests, by "
            "policy and priority class.", ("policy", "class"))
        #: The measurement->batching feedback loop, when enabled; ticks on
        #: the batcher task between batches.
        self.adaptive = (AdaptiveBatcher(self.config, self.metrics)
                         if self.config.adaptive else None)
        # Entries are ``(sort_key, arrival_seq, _Pending)``: the asyncio
        # PriorityQueue pops the smallest tuple, so the policy's key order
        # decides who drains first (strict-priority keys are ``(priority,)``
        # — the historic order) and the monotonically increasing arrival
        # sequence keeps FIFO order within one key (and keeps _Pending out
        # of comparisons).  A pending may appear more than once (an urgent
        # rider re-enqueues its queued leader at the better key);
        # ``_Pending.claimed`` makes the stale duplicates no-ops on pop.
        self._queue: "Optional[asyncio.PriorityQueue[Tuple[Tuple[float, ...], int, _Pending]]]" = None
        self._arrival_seq = 0
        # Stale duplicates currently in the queue; subtracted from qsize()
        # so admission control sees real pending work, not bookkeeping.
        self._stale_entries = 0
        self._inflight: Dict[str, _Pending] = {}
        self._batcher: Optional[asyncio.Task] = None
        self._running = False

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        if self._running:
            return
        self._queue = asyncio.PriorityQueue()
        self._stale_entries = 0
        self._update_queue_gauge()
        self._running = True
        self._batcher = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        for pending in self._inflight.values():
            if not pending.future.done():
                pending.future.cancel()
        self._inflight.clear()

    # -- submission --------------------------------------------------------------

    async def schedule(self, request: ScheduleRequest) -> ScheduleResponse:
        """Submit one request; awaits its (possibly coalesced) response.

        May raise :class:`AdmissionError` before any work is queued when the
        service is saturated (queue depth) or the request's client is over
        its in-flight limit.
        """
        response, _ = await self.schedule_timed(request)
        return response

    async def schedule_timed(self, request: ScheduleRequest,
                             request_id: Optional[str] = None
                             ) -> Tuple[ScheduleResponse, RequestTiming]:
        """Like :meth:`schedule`, additionally returning the request's
        :class:`RequestTiming` (end-to-end latency, queue wait) — the HTTP
        layer's access log consumes it.  ``request_id`` seeds the request's
        deterministic trace id (so the HTTP layer, access log, and trace
        ring buffer all agree); omitted, the service mints a local one."""
        if not self._running:
            raise RuntimeError("service is not running; call start() first")
        if request.tune:
            raise ValueError("tune requests mutate the database and are not "
                             "served; tune through the session directly")
        key = request_fingerprint(request)
        existing = self._inflight.get(key)
        if self.config.fast_lane and existing is None:
            # Probing before admission keeps hits immune to queue
            # saturation (they add no queued work) and keeps the miss cost
            # to one cache get; in-flight duplicates skip the probe and
            # coalesce as before.
            served = self._serve_fast_lane(request, request_id)
            if served is not None:
                return served
        tracer = self._tracer
        root = None
        if tracer is not None and tracer.enabled:
            if request_id is None:
                request_id = f"local-{os.getpid()}-{next(self._local_ids)}"
            admit_wall = time.time()
            program = request.program
            root = tracer.begin(
                "request", tracer.trace_id_for(request_id),
                attrs={"request_id": request_id,
                       "priority": request.priority,
                       "program": (program.name if isinstance(program, Program)
                                   else str(program)),
                       **({"client": request.client}
                          if request.client is not None else {})})
        outcome = "error"
        try:
            try:
                self.admission.admit(
                    request,
                    queue_depth=self._queue.qsize() - self._stale_entries,
                    rider=existing is not None)
            except AdmissionError:
                self.stats.record_rejected()
                outcome = "shed"
                raise
            if root is not None:
                tracer.record(root.trace_id, root.span_id,
                              "service.admission", admit_wall, time.time())
                # Child spans of every downstream layer (queue, batch,
                # session, worker) attach under this root via the request.
                request.trace = root.context()
            self.stats.record_request()
            loop = asyncio.get_running_loop()
            timing = RequestTiming(
                coalesced=existing is not None,
                trace_id=root.trace_id if root is not None else None)
            started = loop.time()
            try:
                if existing is not None:
                    # Coalesce: ride the identical in-flight request.  The
                    # response program is copied so concurrent consumers never
                    # share IR.
                    self.stats.record_coalesced()
                    self.session.record_coalesced()
                    if root is not None:
                        root.set_attribute("coalesced", True)
                    rider_key = self.policy.rider_key(request, started)
                    self._policy_decisions.labels(
                        self.config.policy, str(request.priority)).inc()
                    if rider_key < existing.best_key \
                            and not existing.claimed:
                        # An urgent rider must not drain at its leader's
                        # worse key: re-enqueue the still-queued leader at
                        # the better one.  The now-stale worse entry pops
                        # later and is skipped through ``claimed``.
                        existing.best_key = rider_key
                        existing.best_priority = min(existing.best_priority,
                                                     request.priority)
                        self._arrival_seq += 1
                        # The superseded worse-key entry is now stale.
                        self._stale_entries += 1
                        await self._queue.put((rider_key,
                                               self._arrival_seq, existing))
                        self._update_queue_gauge()
                    response = await asyncio.shield(existing.future)
                    self._finish_timing(timing, request, existing, started,
                                        loop)
                    outcome = "ok"
                    return self._reissue(response, request), timing
                future: "asyncio.Future[ScheduleResponse]" = \
                    asyncio.get_running_loop().create_future()
                sort_key = self.policy.sort_key(request, started)
                self._policy_decisions.labels(
                    self.config.policy, str(request.priority)).inc()
                pending = _Pending(key, request, future,
                                   best_priority=request.priority,
                                   best_key=sort_key,
                                   enqueued_at=started,
                                   enqueued_wall=time.time())
                self._inflight[key] = pending
                self._arrival_seq += 1
                await self._queue.put((sort_key, self._arrival_seq,
                                       pending))
                self._update_queue_gauge()
                try:
                    response = await asyncio.shield(future)
                finally:
                    # Failed requests are end-to-end requests too: their
                    # latency belongs in the per-priority distribution.
                    self._finish_timing(timing, request, pending, started,
                                        loop)
                outcome = "ok"
                return response, timing
            finally:
                # Admitted requests hold their per-client slot until their
                # response (or failure) resolves, riders included.
                self.admission.release(request)
        finally:
            if root is not None:
                # Finishing the parentless root finalizes the trace into
                # the ring buffer — after worker fragments were absorbed,
                # since futures only resolve once the batch was decoded.
                tracer.finish(root, status=outcome)

    def _serve_fast_lane(self, request: ScheduleRequest,
                         request_id: Optional[str]
                         ) -> Optional[Tuple[ScheduleResponse, RequestTiming]]:
        """Serve ``request`` from the response-level cache, if possible.

        A hit bypasses admission, queueing, and batching: the session's
        pre-encoded response bytes go straight back to the caller with only
        the per-request echo re-encoded, under a single (sampled) root span
        instead of the slow path's full span tree.  Returns ``None`` on a
        miss — or when the session is a duck-typed stub without a response
        cache — and the caller falls through to the full pipeline.
        """
        probe = getattr(self.session, "probe_response", None)
        if probe is None:
            return None
        started = time.perf_counter()
        entry = probe(request)
        if entry is None:
            return None
        tracer = self._tracer
        root = None
        trace_id = None
        if tracer is not None and tracer.tick():
            # Only a sampled request mints ids and a root span; with
            # ``sample_rate`` below 1.0 the tick above is all a sampled-out
            # fast-lane request pays for tracing.
            if request_id is None:
                request_id = f"local-{os.getpid()}-{next(self._local_ids)}"
            trace_id = tracer.trace_id_for(request_id)
            program = request.program
            root = tracer.begin(
                "request", trace_id,
                attrs={"request_id": request_id,
                       "priority": request.priority,
                       "program": (program.name
                                   if isinstance(program, Program)
                                   else str(program)),
                       "fast_lane": True,
                       **({"client": request.client}
                          if request.client is not None else {})})
            # Assembled before the echo is encoded, so the response
            # carries this trace id like a slow-path response would.
            request.trace = root.context()
        response = self.session.assemble_response(entry, request)
        self.stats.record_request()
        self.stats.record_fast_lane()
        self.stats.record_scheduled()
        timing = RequestTiming(
            total_s=max(0.0, time.perf_counter() - started),
            fast_lane=True, trace_id=trace_id)
        self._latency_histogram.labels(str(request.priority)).observe(
            timing.total_s, exemplar=trace_id)
        if root is not None:
            tracer.finish(root, status="ok")
        return response, timing

    def _finish_timing(self, timing: RequestTiming, request: ScheduleRequest,
                       pending: _Pending, started: float,
                       loop: asyncio.AbstractEventLoop) -> None:
        """Observe one admitted request's end-to-end latency under the
        *submitter's* priority (riders keep their own class, not their
        leader's) and fill in the timing the access log reports."""
        timing.total_s = max(0.0, loop.time() - started)
        if pending.claimed_at:
            timing.queue_wait_s = max(
                0.0, pending.claimed_at - pending.enqueued_at)
        # The trace id rides along as the bucket's exemplar, so a saturated
        # latency bucket links straight to a representative slow trace.
        self._latency_histogram.labels(str(request.priority)).observe(
            timing.total_s, exemplar=timing.trace_id)
        # Per-policy latency (queued traffic only — the fast lane bypasses
        # the queue, so no policy shaped it): the basis for comparing how
        # each policy bounds per-class tails under the same load.
        self._policy_latency.labels(
            self.config.policy, str(request.priority)).observe(
            timing.total_s, exemplar=timing.trace_id)

    def _update_queue_gauge(self) -> None:
        queue = self._queue
        if queue is not None:
            self._queue_depth_gauge.set(
                max(0, queue.qsize() - self._stale_entries))

    @staticmethod
    def _reissue(response: ScheduleResponse,
                 request: ScheduleRequest) -> ScheduleResponse:
        copied = response.result.copy()
        # Match the sequential cache-hit path: the served program keeps the
        # *rider's* name, not the coalescing leader's (fingerprints are
        # name-insensitive, so the two can differ for IR-program requests).
        if isinstance(request.program, Program):
            copied.program.name = request.program.name
        # ``from_cache`` keeps its documented meaning (served from the
        # content-addressed cache): a rider of a cold leader was computed,
        # not cache-served — coalescing is counted on the session report.
        return ScheduleResponse(
            request=request, scheduler=response.scheduler,
            program=copied.program, result=copied,
            runtime_s=response.runtime_s, normalized=response.normalized,
            input_hash=response.input_hash,
            canonical_hash=response.canonical_hash,
            from_cache=response.from_cache,
            normalization_cache_hit=response.normalization_cache_hit,
            # A rider reports *its own* trace, not its leader's.
            trace_id=((request.trace or {}).get("trace_id")
                      or getattr(response, "trace_id", None)))

    # -- the batcher -------------------------------------------------------------

    async def _next_pending(self) -> _Pending:
        """Pop the most urgent unclaimed request (skipping stale duplicate
        entries left behind by rider re-prioritization)."""
        while True:
            sort_key, _, pending = await self._queue.get()
            if pending.claimed:
                self._stale_entries -= 1
                self._update_queue_gauge()
                continue
            # Stateful policies advance on entry into service (weighted-fair
            # moves its global virtual clock to the served key, which floors
            # idle classes' next keys).  Stale pops are skipped above — the
            # live duplicate's better key already was or will be served.
            self.policy.on_dequeue(sort_key)
            pending.claimed = True
            pending.claimed_at = asyncio.get_running_loop().time()
            pending.claimed_wall = time.time()
            self._update_queue_gauge()
            return pending

    async def _collect_batch(self) -> List[_Pending]:
        """Drain up to ``max_batch_size`` requests in priority order."""
        batch = [await self._next_pending()]
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.batch_window_s
        while len(batch) < self.config.max_batch_size:
            timeout = deadline - loop.time()
            if timeout <= 0:
                break
            try:
                batch.append(await asyncio.wait_for(
                    self._next_pending(), timeout))
            except asyncio.TimeoutError:
                break
        return batch

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        tracer = self._tracer
        while True:
            batch = await self._collect_batch()
            self.stats.record_batch(len(batch))
            dispatched_at = loop.time()
            dispatched_wall = time.time()
            schedule_spans: Dict[str, Any] = {}
            for pending in batch:
                self._phase_histogram.labels("queue").observe(
                    max(0.0, pending.claimed_at - pending.enqueued_at))
                self._phase_histogram.labels("batch").observe(
                    max(0.0, dispatched_at - pending.claimed_at))
                context = getattr(pending.request, "trace", None)
                if tracer is None or not tracer.enabled or not context:
                    continue
                trace_id = context["trace_id"]
                parent_id = context.get("span_id")
                tracer.record(trace_id, parent_id, "service.queue",
                              pending.enqueued_wall, pending.claimed_wall,
                              {"priority": pending.best_priority})
                tracer.record(trace_id, parent_id, "service.batch",
                              pending.claimed_wall, dispatched_wall,
                              {"batch_size": len(batch)})
                # The schedule span becomes the parent of everything the
                # executing side records (session, passes, cache, search) —
                # including worker-process spans, which rejoin through the
                # serialized request.trace context.
                span = tracer.begin(
                    "service.schedule", trace_id, parent_id=parent_id,
                    attrs={"executor": ("pool" if self.pool is not None
                                        else "threads"),
                           "batch_size": len(batch)},
                    start_s=dispatched_wall)
                pending.request.trace = span.context()
                schedule_spans[pending.key] = span
            requests = [pending.request for pending in batch]
            try:
                responses = await loop.run_in_executor(
                    None, self._schedule_batch, requests)
            except Exception as error:  # noqa: BLE001 - forwarded to callers
                # Batch-level failure (e.g. the executor itself); per-item
                # failures are returned in-band by return_exceptions below.
                self.stats.record_errors(len(batch))
                for span in schedule_spans.values():
                    tracer.finish(span, status="error")
                for pending in batch:
                    self._inflight.pop(pending.key, None)
                    if not pending.future.done():
                        pending.future.set_exception(error)
                continue
            schedule_s = max(0.0, loop.time() - dispatched_at)
            for pending, response in zip(batch, responses):
                self._inflight.pop(pending.key, None)
                self._phase_histogram.labels("schedule").observe(schedule_s)
                span = schedule_spans.pop(pending.key, None)
                failed = isinstance(response, Exception)
                if span is not None:
                    tracer.finish(span, status="error" if failed else "ok")
                if failed:
                    # One invalid request must not fail its batchmates.
                    self.stats.record_errors()
                    if not pending.future.done():
                        pending.future.set_exception(response)
                else:
                    self.stats.record_scheduled()
                    if not pending.future.done():
                        pending.future.set_result(response)
            if self.adaptive is not None:
                decision = self.adaptive.maybe_tick(loop.time())
                if decision is not None and decision["action"] != "hold" \
                        and tracer is not None and tracer.enabled:
                    # A parentless span per adjustment: the trace ring
                    # buffer shows when and why the knobs moved.
                    adjusted = time.time()
                    span = tracer.begin(
                        "service.adaptive",
                        tracer.trace_id_for(
                            f"adaptive-{os.getpid()}-{self._arrival_seq}"),
                        attrs=decision, start_s=adjusted)
                    tracer.finish(span, status="ok", end_s=adjusted)

    def _schedule_batch(self, requests: List[ScheduleRequest]
                        ) -> List[ScheduleResponse]:
        if self.pool is not None:
            responses = self.pool.schedule_batch(requests)
        else:
            responses = self.session.schedule_batch(
                requests, max_workers=self.config.max_workers,
                return_exceptions=True)
        if self.config.fast_lane:
            # Feed the fast lane: responses whose normalization and
            # schedule both came from cache are deterministic repeats, so
            # their encoded bytes are stored for zero-parse serving (the
            # store itself checks the flags).  Runs on the executor thread,
            # off the event loop.
            store = getattr(self.session, "store_response", None)
            if store is not None:
                for request, response in zip(requests, responses):
                    if not isinstance(response, Exception):
                        store(request, response)
        return responses


class ServiceRunner:
    """A :class:`SchedulingService` on an event loop in a background thread.

    Synchronous consumers (the HTTP endpoint, scripts, tests) call
    :meth:`schedule`, which blocks the calling thread while the service
    batches and coalesces on its own loop.
    """

    def __init__(self, session: Session, config: Optional[ServiceConfig] = None,
                 pool: "Optional[WorkerPool]" = None):
        self.session = session
        self.service = SchedulingService(session, config, pool=pool)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    def __enter__(self) -> "ServiceRunner":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def stats(self) -> ServiceStats:
        return self.service.stats

    def start(self) -> None:
        if self._thread is not None:
            return
        self._loop = asyncio.new_event_loop()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            self._loop.call_soon(self._started.set)
            self._loop.run_forever()

        self._thread = threading.Thread(target=run, name="repro-serving",
                                        daemon=True)
        self._thread.start()
        self._started.wait()
        asyncio.run_coroutine_threadsafe(self.service.start(), self._loop).result()

    def stop(self) -> None:
        if self._thread is None:
            return
        asyncio.run_coroutine_threadsafe(self.service.stop(), self._loop).result()
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._loop.close()
        self._thread = None
        self._loop = None

    def schedule(self, request: ScheduleRequest,
                 timeout: Optional[float] = None) -> ScheduleResponse:
        """Blocking submit of one request through the async service."""
        if self._loop is None:
            raise RuntimeError("runner is not started")
        future = asyncio.run_coroutine_threadsafe(
            self.service.schedule(request), self._loop)
        return future.result(timeout)

    def schedule_timed(self, request: ScheduleRequest,
                       timeout: Optional[float] = None,
                       request_id: Optional[str] = None
                       ) -> Tuple[ScheduleResponse, RequestTiming]:
        """Blocking submit returning ``(response, RequestTiming)`` — the
        HTTP layer uses the timing for its structured access log and passes
        ``request_id`` so the trace id matches the log line."""
        if self._loop is None:
            raise RuntimeError("runner is not started")
        future = asyncio.run_coroutine_threadsafe(
            self.service.schedule_timed(request, request_id=request_id),
            self._loop)
        return future.result(timeout)

    def schedule_many(self, requests: List[ScheduleRequest],
                      timeout: Optional[float] = None) -> List[ScheduleResponse]:
        """Submit many requests concurrently; returns responses in order."""
        if self._loop is None:
            raise RuntimeError("runner is not started")

        async def gather() -> Tuple[ScheduleResponse, ...]:
            return await asyncio.gather(
                *(self.service.schedule(request) for request in requests))

        future = asyncio.run_coroutine_threadsafe(gather(), self._loop)
        return list(future.result(timeout))

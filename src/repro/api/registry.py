"""Decorator-based plugin registries for schedulers and frontends.

Every scheduler the repo ships (daisy, the polyhedral/compiler/Tiramisu
baselines, the Python-framework models, and a pure evolutionary-search
configuration) registers itself here, and :class:`repro.api.Session` resolves
schedulers exclusively by name.  Third-party code extends the system the same
way::

    from repro.api import register_scheduler

    @register_scheduler("my-sched", normalizes=True)
    def build_my_scheduler(machine=None, threads=1, **options):
        return MyScheduler(machine, threads)

Frontends translate non-IR inputs (e.g. C-like source text) into
:class:`~repro.ir.nodes.Program` objects and register under
:func:`register_frontend`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..ir.nodes import Program
from ..perf.machine import DEFAULT_MACHINE, MachineModel
from ..scheduler.base import Scheduler


class RegistryError(KeyError):
    """Raised on unknown lookups or conflicting registrations."""


@dataclass
class PluginInfo:
    """One registered plugin: its factory plus lookup metadata."""

    name: str
    factory: Callable[..., Any]
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self.factory(*args, **kwargs)


class Registry:
    """A named collection of factories with decorator registration."""

    def __init__(self, kind: str):
        self.kind = kind
        self._plugins: Dict[str, PluginInfo] = {}
        self._lock = threading.RLock()

    def register(self, name: Optional[str] = None, *, overwrite: bool = False,
                 **metadata: Any) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator registering ``factory`` under ``name``.

        Can also be called directly: ``registry.register("x")(factory)``.
        Registering an existing name raises :class:`RegistryError` unless
        ``overwrite=True`` (so typos do not silently shadow built-ins).
        """

        def decorator(factory: Callable[..., Any]) -> Callable[..., Any]:
            key = name or getattr(factory, "name", None) or factory.__name__
            with self._lock:
                if key in self._plugins and not overwrite:
                    raise RegistryError(
                        f"{self.kind} {key!r} is already registered; "
                        f"pass overwrite=True to replace it")
                self._plugins[key] = PluginInfo(key, factory, dict(metadata))
            return factory

        return decorator

    def get(self, name: str) -> PluginInfo:
        with self._lock:
            if name not in self._plugins:
                raise RegistryError(
                    f"unknown {self.kind} {name!r}; registered: {self.names()}")
            return self._plugins[name]

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Instantiate the plugin registered under ``name``."""
        return self.get(name)(*args, **kwargs)

    def metadata(self, name: str) -> Dict[str, Any]:
        return dict(self.get(name).metadata)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._plugins)

    def unregister(self, name: str) -> None:
        with self._lock:
            if name not in self._plugins:
                raise RegistryError(f"unknown {self.kind} {name!r}")
            del self._plugins[name]

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._plugins

    def __len__(self) -> int:
        with self._lock:
            return len(self._plugins)


#: The process-wide scheduler registry.
SCHEDULERS = Registry("scheduler")
#: The process-wide frontend registry.
FRONTENDS = Registry("frontend")


def register_scheduler(name: Optional[str] = None, *, overwrite: bool = False,
                       **metadata: Any):
    """Register a scheduler factory (decorator). See :data:`SCHEDULERS`.

    Recognized metadata: ``normalizes`` (bool — the session pre-normalizes
    programs through the cache before handing them over), ``tunes`` (bool —
    the scheduler supports database seeding via ``tune``).
    """
    return SCHEDULERS.register(name, overwrite=overwrite, **metadata)


def register_frontend(name: Optional[str] = None, *, overwrite: bool = False,
                      **metadata: Any):
    """Register a frontend factory (decorator). See :data:`FRONTENDS`."""
    return FRONTENDS.register(name, overwrite=overwrite, **metadata)


def create_scheduler(name: str, machine: Optional[MachineModel] = None,
                     threads: int = 1, **options: Any) -> Scheduler:
    """Instantiate a registered scheduler by name."""
    return SCHEDULERS.create(name, machine=machine or DEFAULT_MACHINE,
                             threads=threads, **options)


def scheduler_normalizes(name: str) -> bool:
    """Whether the named scheduler expects a-priori-normalized input."""
    return bool(SCHEDULERS.metadata(name).get("normalizes", False))


def scheduler_tunes(name: str) -> bool:
    """Whether the named scheduler supports database seeding via ``tune``."""
    return bool(SCHEDULERS.metadata(name).get("tunes", False))


# ---------------------------------------------------------------------------
# Built-in registrations
# ---------------------------------------------------------------------------

def _pre_normalized_options():
    """Normalization options that make a scheduler's internal pipeline a no-op.

    Session-managed daisy instances receive programs that already went
    through the content-addressed normalization cache; their internal
    pipeline must not redo (or undo) that work — the registered
    ``"identity"`` pipeline is exactly that no-op.
    """
    from ..normalization.pipeline import NormalizationOptions

    return NormalizationOptions.named("identity")


@register_scheduler("daisy", normalizes=True, tunes=True)
def _make_daisy(machine=None, threads=1, search=None, database=None,
                pre_normalized=True, normalization=None, **_ignored):
    from ..normalization.pipeline import NormalizationOptions
    from ..scheduler.daisy import DaisyConfig, DaisyScheduler
    from ..scheduler.evolutionary import SearchConfig

    if normalization is None:
        normalization = (_pre_normalized_options() if pre_normalized
                         else NormalizationOptions())
    config = DaisyConfig(threads=threads, search=search or SearchConfig())
    return DaisyScheduler(machine=machine, config=config, database=database,
                          normalization=normalization)


@register_scheduler("evolutionary", normalizes=True, tunes=True)
def _make_evolutionary(machine=None, threads=1, search=None, database=None,
                       **_ignored):
    """Pure evolutionary search on normalized nests.

    ``max_database_distance=-1`` disables transfer tuning, so scheduling
    never reads the database — but ``tune()`` records into the session
    database when one is provided, like every ``tunes=True`` scheduler.
    """
    from ..scheduler.daisy import DaisyConfig, DaisyScheduler
    from ..scheduler.database import TuningDatabase
    from ..scheduler.evolutionary import SearchConfig

    config = DaisyConfig(threads=threads, search=search or SearchConfig(),
                         max_database_distance=-1.0, search_on_miss=True)
    return DaisyScheduler(machine=machine, config=config,
                          database=database if database is not None
                          else TuningDatabase(),
                          normalization=_pre_normalized_options())


@register_scheduler("polly", normalizes=False)
def _make_polly(machine=None, threads=1, **_ignored):
    from ..scheduler.polyhedral import PollyScheduler

    return PollyScheduler(machine, threads=threads)


@register_scheduler("clang", normalizes=False)
def _make_clang(machine=None, threads=1, **_ignored):
    from ..scheduler.compiler_baseline import ClangScheduler

    return ClangScheduler(machine, threads=threads)


@register_scheduler("icc", normalizes=False)
def _make_icc(machine=None, threads=1, **_ignored):
    from ..scheduler.compiler_baseline import IccScheduler

    return IccScheduler(machine, threads=threads)


@register_scheduler("tiramisu", normalizes=False)
def _make_tiramisu(machine=None, threads=1, mcts=None, **_ignored):
    from ..scheduler.tiramisu import MctsConfig, TiramisuScheduler

    return TiramisuScheduler(machine, threads=threads,
                             config=mcts or MctsConfig())


@register_scheduler("numpy", normalizes=False)
def _make_numpy(machine=None, threads=1, **_ignored):
    from ..scheduler.frameworks import NumpyScheduler

    return NumpyScheduler(machine)


@register_scheduler("numba", normalizes=False)
def _make_numba(machine=None, threads=1, **_ignored):
    from ..scheduler.frameworks import NumbaScheduler

    return NumbaScheduler(machine, threads=threads)


@register_scheduler("dace", normalizes=False)
def _make_dace(machine=None, threads=1, **_ignored):
    from ..scheduler.frameworks import DaceScheduler

    return DaceScheduler(machine, threads=threads)


@register_frontend("clike", suffixes=(".c", ".clike"))
def _clike_frontend(source: str, name: str = "clike_program") -> Program:
    from ..frontend.clike import parse_clike_program

    return parse_clike_program(source, name)

"""Pluggable storage backends for the content-addressed caches.

:class:`~repro.api.cache.NormalizationCache` speaks to a
:class:`CacheBackend`: a namespaced key/value store with LRU bounds and
hit/miss/eviction accounting.  Two backends ship:

* :class:`MemoryCacheBackend` — per-namespace ``OrderedDict`` LRU stores
  holding live Python objects.  This is the historical in-process behavior
  and the default of every :class:`~repro.api.Session`.
* :class:`SQLiteCacheBackend` — an on-disk store (stdlib ``sqlite3``) so
  normalized and scheduled entries survive process restarts.  Values are
  serialized to JSON through per-namespace codecs bound by the cache layer;
  a small write-through in-memory hot layer keeps repeat lookups cheap.
  The backend distinguishes *memory hits* (served from the hot layer) from
  *disk hits* (decoded from SQLite), which :meth:`repro.api.Session.report`
  surfaces.  The store is safe to share between processes (WAL journal,
  busy timeout, retried writes, SQL-side recency stamps), which is how the
  :class:`~repro.serving.workers.WorkerPool` workers share one cache file.

Backends are deliberately ignorant of what they store: the cache layer
binds ``encode``/``decode`` callables per namespace (:meth:`CacheBackend.bind`)
so that entry types stay defined next to the cache that owns them.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

Encoder = Callable[[Any], Dict[str, Any]]
Decoder = Callable[[Dict[str, Any]], Any]


@dataclass
class BackendStats:
    """Hit/miss/eviction accounting of one backend instance.

    ``busy_retries`` counts writes that found the store locked by another
    process and succeeded on a later attempt (only persistent backends
    shared across processes ever increment it).
    """

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    busy_retries: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def to_dict(self) -> Dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "busy_retries": self.busy_retries,
        }


class CacheBackend:
    """Interface every cache storage backend implements.

    A backend is a map ``(namespace, key) -> value`` with LRU recency per
    namespace.  ``get`` refreshes recency; ``put`` may evict the least
    recently used entries of the namespace once it exceeds the backend's
    bound.  All methods must be thread-safe: one backend is shared by every
    worker of a ``schedule_batch`` fan-out.
    """

    #: Short identifier surfaced in ``Session.report()``.
    name = "backend"
    #: True when entries survive the process (drives report bookkeeping).
    persistent = False

    def __init__(self) -> None:
        self.stats = BackendStats()
        self._codecs: Dict[str, Tuple[Encoder, Decoder]] = {}
        self._raw_namespaces: set = set()

    def bind(self, namespace: str, encode: Encoder, decode: Decoder,
             raw: bool = False) -> None:
        """Register the serialization codec of one namespace.

        In-memory backends may ignore the codec; persistent backends use it
        to map values to and from JSON payloads.  With ``raw=True`` the
        codec speaks payload *strings* directly (``encode`` returns the
        exact text to persist, ``decode`` receives it verbatim) and
        persistent backends skip the JSON round-trip entirely — this is how
        the response cache stores pre-encoded bytes that are served without
        re-parsing.
        """
        self._codecs[namespace] = (encode, decode)
        if raw:
            self._raw_namespaces.add(namespace)
        else:
            self._raw_namespaces.discard(namespace)

    # -- storage interface -------------------------------------------------------

    def get(self, namespace: str, key: str) -> Optional[Any]:
        raise NotImplementedError

    def put(self, namespace: str, key: str, value: Any) -> None:
        raise NotImplementedError

    def sizes(self) -> Dict[str, int]:
        """Entry counts per namespace."""
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (no-op for in-memory backends)."""

    def __len__(self) -> int:
        return sum(self.sizes().values())


class MemoryCacheBackend(CacheBackend):
    """Per-namespace ``OrderedDict`` LRU stores holding live objects."""

    name = "memory"
    persistent = False

    def __init__(self, max_entries: int = 1024):
        super().__init__()
        self.max_entries = max_entries
        self._lock = threading.RLock()
        self._stores: Dict[str, "OrderedDict[str, Any]"] = {}

    def _store(self, namespace: str) -> "OrderedDict[str, Any]":
        store = self._stores.get(namespace)
        if store is None:
            store = self._stores[namespace] = OrderedDict()
        return store

    def get(self, namespace: str, key: str) -> Optional[Any]:
        with self._lock:
            store = self._store(namespace)
            value = store.get(key)
            if value is None:
                self.stats.misses += 1
                return None
            store.move_to_end(key)
            self.stats.memory_hits += 1
            return value

    def put(self, namespace: str, key: str, value: Any) -> None:
        with self._lock:
            store = self._store(namespace)
            store[key] = value
            store.move_to_end(key)
            self.stats.writes += 1
            while len(store) > self.max_entries:
                store.popitem(last=False)
                self.stats.evictions += 1

    def sizes(self) -> Dict[str, int]:
        with self._lock:
            return {namespace: len(store)
                    for namespace, store in self._stores.items()}

    def clear(self) -> None:
        with self._lock:
            self._stores.clear()


class SQLiteCacheBackend(CacheBackend):
    """On-disk cache store; entries survive process restarts and may be
    shared concurrently by several processes.

    One table holds every namespace; ``seq`` is a monotonically increasing
    recency stamp (bumped on every hit) that implements LRU eviction without
    wall-clock timestamps.  A bounded write-through hot layer serves repeat
    lookups without touching SQLite or the codec.

    Cross-process safety (one backend per worker of a
    :class:`~repro.serving.workers.WorkerPool`, all on the same file):

    * the connection runs in **WAL mode** so readers never block the single
      writer and vice versa (falls back to the default journal silently on
      filesystems without WAL support),
    * a **busy timeout** (default 5 s) makes SQLite wait for a competing
      writer instead of failing immediately, and writes that still find the
      store locked are retried with backoff
      (:attr:`BackendStats.busy_retries` counts them),
    * recency stamps are computed **inside SQL**
      (``COALESCE(MAX(seq), 0) + 1``) rather than from a per-process
      counter, so stamps from different processes interleave monotonically
      and eviction order stays globally consistent.

    The hot layer is per-process by design: an entry written by one process
    is served to another from disk on first access and from that process's
    hot layer afterwards.
    """

    name = "sqlite"
    persistent = True

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS cache (
            namespace TEXT NOT NULL,
            key TEXT NOT NULL,
            payload TEXT NOT NULL,
            seq INTEGER NOT NULL,
            PRIMARY KEY (namespace, key)
        )
    """
    #: The seq index keeps the SQL-side recency stamps (MAX(seq)+1 per touch
    #: and insert) and LRU eviction (ORDER BY seq) off full-table scans.
    _SEQ_INDEX = "CREATE INDEX IF NOT EXISTS cache_seq ON cache(seq)"
    #: Attempts per write before a persistent lock is surfaced to the caller.
    _WRITE_ATTEMPTS = 5

    def __init__(self, path: str, max_entries: int = 4096,
                 hot_entries: int = 128, busy_timeout_s: float = 5.0):
        super().__init__()
        self.path = path
        self.max_entries = max_entries
        self.hot_entries = hot_entries
        self._lock = threading.RLock()
        self._closed = False
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.execute(f"PRAGMA busy_timeout = {int(busy_timeout_s * 1000)}")
        # WAL lets concurrent worker processes read while one writes; on
        # filesystems that refuse it SQLite keeps the rollback journal and
        # the busy timeout still serializes writers correctly.
        self._conn.execute("PRAGMA journal_mode = WAL")
        self._conn.execute("PRAGMA synchronous = NORMAL")
        self._with_write_retries(self._create_schema)
        self._hot: Dict[str, "OrderedDict[str, Any]"] = {}
        # Recency updates are buffered here (insertion-ordered) and flushed
        # on the next write or on close, so cache hits never pay a SQLite
        # write.  Values are unused; the dict keeps touch order.
        self._dirty_seq: Dict[Tuple[str, str], None] = {}

    def _create_schema(self) -> None:
        self._conn.execute(self._SCHEMA)
        self._conn.execute(self._SEQ_INDEX)
        self._conn.commit()

    def _with_write_retries(self, operation: Callable[[], None]) -> None:
        """Run a write transaction, retrying when another process holds the
        write lock longer than the busy timeout."""
        delay = 0.05
        for attempt in range(self._WRITE_ATTEMPTS):
            try:
                operation()
                return
            except sqlite3.OperationalError as error:
                self._conn.rollback()
                message = str(error).lower()
                locked = "locked" in message or "busy" in message
                if not locked or attempt == self._WRITE_ATTEMPTS - 1:
                    raise
                self.stats.busy_retries += 1
                time.sleep(delay)
                delay *= 2

    def _codec(self, namespace: str) -> Tuple[Encoder, Decoder]:
        try:
            return self._codecs[namespace]
        except KeyError:
            raise KeyError(
                f"no codec bound for namespace {namespace!r}; call bind() first")

    def _hot_store(self, namespace: str) -> "OrderedDict[str, Any]":
        store = self._hot.get(namespace)
        if store is None:
            store = self._hot[namespace] = OrderedDict()
        return store

    def _remember(self, namespace: str, key: str, value: Any) -> None:
        store = self._hot_store(namespace)
        store[key] = value
        store.move_to_end(key)
        while len(store) > self.hot_entries:
            store.popitem(last=False)

    def _touch(self, namespace: str, key: str) -> None:
        """Record recency in memory; persisted lazily by ``_flush_touches``."""
        # Re-touching moves the key to the back of the flush order.
        self._dirty_seq.pop((namespace, key), None)
        self._dirty_seq[(namespace, key)] = None

    def _flush_touches(self) -> None:
        """Write buffered recency updates (called inside a write transaction
        before eviction decisions and on close, so the on-disk LRU order
        reflects every hit).  The stamp is computed in SQL so that touches
        from concurrent processes interleave monotonically.  The caller
        clears the buffer only after its transaction commits — a busy retry
        re-runs these updates."""
        if not self._dirty_seq:
            return
        self._conn.executemany(
            "UPDATE cache SET seq = (SELECT COALESCE(MAX(seq), 0) + 1 FROM cache) "
            "WHERE namespace = ? AND key = ?",
            list(self._dirty_seq))

    def get(self, namespace: str, key: str) -> Optional[Any]:
        with self._lock:
            hot = self._hot_store(namespace)
            value = hot.get(key)
            if value is not None:
                hot.move_to_end(key)
                self.stats.memory_hits += 1
                self._touch(namespace, key)
                return value
            row = self._conn.execute(
                "SELECT payload FROM cache WHERE namespace = ? AND key = ?",
                (namespace, key)).fetchone()
            if row is None:
                self.stats.misses += 1
                return None
            _, decode = self._codec(namespace)
            try:
                # Raw namespaces persist the payload text verbatim: decoding
                # hands the string straight to the codec, no JSON parse.
                if namespace in self._raw_namespaces:
                    value = decode(row[0])
                else:
                    value = decode(json.loads(row[0]))
            except Exception:
                # A stale or incompatible payload (e.g. written by an older
                # schema of the entry types) must not poison the cache.  The
                # delete is best-effort: losing it to a concurrent writer's
                # lock only means the stale row is dropped on a later miss.
                try:
                    self._conn.execute(
                        "DELETE FROM cache WHERE namespace = ? AND key = ?",
                        (namespace, key))
                    self._conn.commit()
                except sqlite3.OperationalError:
                    self._conn.rollback()
                self.stats.misses += 1
                return None
            self.stats.disk_hits += 1
            self._remember(namespace, key, value)
            self._touch(namespace, key)
            return value

    def put(self, namespace: str, key: str, value: Any) -> None:
        encode, _ = self._codec(namespace)
        if namespace in self._raw_namespaces:
            payload = encode(value)
        else:
            payload = json.dumps(encode(value), sort_keys=True)

        victims: "list[str]" = []

        def write() -> None:
            # A retry re-runs the whole transaction, so nothing here may
            # mutate Python-side state — that happens after the commit.
            victims.clear()
            self._flush_touches()
            self._conn.execute(
                "INSERT OR REPLACE INTO cache (namespace, key, payload, seq) "
                "VALUES (?, ?, ?, (SELECT COALESCE(MAX(seq), 0) + 1 FROM cache))",
                (namespace, key, payload))
            victims.extend(self._evict(namespace))
            self._conn.commit()

        with self._lock:
            self._with_write_retries(write)
            self._dirty_seq.clear()
            self.stats.writes += 1
            hot = self._hot_store(namespace)
            for victim in victims:
                hot.pop(victim, None)
                self.stats.evictions += 1
            self._remember(namespace, key, value)

    def _evict(self, namespace: str) -> "list[str]":
        """Delete the LRU excess of one namespace; returns the victim keys.

        Runs inside the write transaction and touches only SQLite state
        (a busy retry rolls the deletes back and re-runs them); the caller
        updates stats and the hot layer after the commit succeeds.
        """
        count = self._conn.execute(
            "SELECT COUNT(*) FROM cache WHERE namespace = ?",
            (namespace,)).fetchone()[0]
        excess = count - self.max_entries
        if excess <= 0:
            return []
        victims = [key for (key,) in self._conn.execute(
            "SELECT key FROM cache WHERE namespace = ? ORDER BY seq ASC LIMIT ?",
            (namespace, excess))]
        for key in victims:
            self._conn.execute(
                "DELETE FROM cache WHERE namespace = ? AND key = ?",
                (namespace, key))
        return victims

    def sizes(self) -> Dict[str, int]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT namespace, COUNT(*) FROM cache GROUP BY namespace").fetchall()
            return {namespace: count for namespace, count in rows}

    def clear(self) -> None:
        def wipe() -> None:
            self._conn.execute("DELETE FROM cache")
            self._conn.commit()

        with self._lock:
            self._with_write_retries(wipe)
            self._hot.clear()
            self._dirty_seq.clear()

    def close(self) -> None:
        def flush() -> None:
            self._flush_touches()
            self._conn.commit()

        with self._lock:
            # Idempotent: Session.close() documents that a second close is a
            # no-op, and sqlite3 raises on operating on a closed connection.
            if self._closed:
                return
            self._closed = True
            try:
                self._with_write_retries(flush)
            except sqlite3.OperationalError:
                # Recency stamps are advisory; never fail a close over them.
                pass
            self._dirty_seq.clear()
            self._conn.close()

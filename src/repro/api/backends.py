"""Pluggable storage backends for the content-addressed caches.

:class:`~repro.api.cache.NormalizationCache` speaks to a
:class:`CacheBackend`: a namespaced key/value store with LRU bounds and
hit/miss/eviction accounting.  Two backends ship:

* :class:`MemoryCacheBackend` — per-namespace ``OrderedDict`` LRU stores
  holding live Python objects.  This is the historical in-process behavior
  and the default of every :class:`~repro.api.Session`.
* :class:`SQLiteCacheBackend` — an on-disk store (stdlib ``sqlite3``) so
  normalized and scheduled entries survive process restarts.  Values are
  serialized to JSON through per-namespace codecs bound by the cache layer;
  a small write-through in-memory hot layer keeps repeat lookups cheap.
  The backend distinguishes *memory hits* (served from the hot layer) from
  *disk hits* (decoded from SQLite), which :meth:`repro.api.Session.report`
  surfaces.

Backends are deliberately ignorant of what they store: the cache layer
binds ``encode``/``decode`` callables per namespace (:meth:`CacheBackend.bind`)
so that entry types stay defined next to the cache that owns them.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

Encoder = Callable[[Any], Dict[str, Any]]
Decoder = Callable[[Dict[str, Any]], Any]


@dataclass
class BackendStats:
    """Hit/miss/eviction accounting of one backend instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def to_dict(self) -> Dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
        }


class CacheBackend:
    """Interface every cache storage backend implements.

    A backend is a map ``(namespace, key) -> value`` with LRU recency per
    namespace.  ``get`` refreshes recency; ``put`` may evict the least
    recently used entries of the namespace once it exceeds the backend's
    bound.  All methods must be thread-safe: one backend is shared by every
    worker of a ``schedule_batch`` fan-out.
    """

    #: Short identifier surfaced in ``Session.report()``.
    name = "backend"
    #: True when entries survive the process (drives report bookkeeping).
    persistent = False

    def __init__(self) -> None:
        self.stats = BackendStats()
        self._codecs: Dict[str, Tuple[Encoder, Decoder]] = {}

    def bind(self, namespace: str, encode: Encoder, decode: Decoder) -> None:
        """Register the serialization codec of one namespace.

        In-memory backends may ignore the codec; persistent backends use it
        to map values to and from JSON payloads.
        """
        self._codecs[namespace] = (encode, decode)

    # -- storage interface -------------------------------------------------------

    def get(self, namespace: str, key: str) -> Optional[Any]:
        raise NotImplementedError

    def put(self, namespace: str, key: str, value: Any) -> None:
        raise NotImplementedError

    def sizes(self) -> Dict[str, int]:
        """Entry counts per namespace."""
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (no-op for in-memory backends)."""

    def __len__(self) -> int:
        return sum(self.sizes().values())


class MemoryCacheBackend(CacheBackend):
    """Per-namespace ``OrderedDict`` LRU stores holding live objects."""

    name = "memory"
    persistent = False

    def __init__(self, max_entries: int = 1024):
        super().__init__()
        self.max_entries = max_entries
        self._lock = threading.RLock()
        self._stores: Dict[str, "OrderedDict[str, Any]"] = {}

    def _store(self, namespace: str) -> "OrderedDict[str, Any]":
        store = self._stores.get(namespace)
        if store is None:
            store = self._stores[namespace] = OrderedDict()
        return store

    def get(self, namespace: str, key: str) -> Optional[Any]:
        with self._lock:
            store = self._store(namespace)
            value = store.get(key)
            if value is None:
                self.stats.misses += 1
                return None
            store.move_to_end(key)
            self.stats.memory_hits += 1
            return value

    def put(self, namespace: str, key: str, value: Any) -> None:
        with self._lock:
            store = self._store(namespace)
            store[key] = value
            store.move_to_end(key)
            self.stats.writes += 1
            while len(store) > self.max_entries:
                store.popitem(last=False)
                self.stats.evictions += 1

    def sizes(self) -> Dict[str, int]:
        with self._lock:
            return {namespace: len(store)
                    for namespace, store in self._stores.items()}

    def clear(self) -> None:
        with self._lock:
            self._stores.clear()


class SQLiteCacheBackend(CacheBackend):
    """On-disk cache store; entries survive process restarts.

    One table holds every namespace; ``seq`` is a monotonically increasing
    recency stamp (bumped on every hit) that implements LRU eviction without
    wall-clock timestamps.  A bounded write-through hot layer serves repeat
    lookups without touching SQLite or the codec.
    """

    name = "sqlite"
    persistent = True

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS cache (
            namespace TEXT NOT NULL,
            key TEXT NOT NULL,
            payload TEXT NOT NULL,
            seq INTEGER NOT NULL,
            PRIMARY KEY (namespace, key)
        )
    """

    def __init__(self, path: str, max_entries: int = 4096,
                 hot_entries: int = 128):
        super().__init__()
        self.path = path
        self.max_entries = max_entries
        self.hot_entries = hot_entries
        self._lock = threading.RLock()
        self._closed = False
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.execute(self._SCHEMA)
        self._conn.commit()
        row = self._conn.execute("SELECT COALESCE(MAX(seq), 0) FROM cache").fetchone()
        self._seq = int(row[0])
        self._hot: Dict[str, "OrderedDict[str, Any]"] = {}
        # Recency updates are buffered here and flushed on the next write
        # (or close), so cache hits never pay a SQLite write.
        self._dirty_seq: Dict[Tuple[str, str], int] = {}

    def _codec(self, namespace: str) -> Tuple[Encoder, Decoder]:
        try:
            return self._codecs[namespace]
        except KeyError:
            raise KeyError(
                f"no codec bound for namespace {namespace!r}; call bind() first")

    def _hot_store(self, namespace: str) -> "OrderedDict[str, Any]":
        store = self._hot.get(namespace)
        if store is None:
            store = self._hot[namespace] = OrderedDict()
        return store

    def _remember(self, namespace: str, key: str, value: Any) -> None:
        store = self._hot_store(namespace)
        store[key] = value
        store.move_to_end(key)
        while len(store) > self.hot_entries:
            store.popitem(last=False)

    def _touch(self, namespace: str, key: str) -> None:
        """Record recency in memory; persisted lazily by ``_flush_touches``."""
        self._seq += 1
        self._dirty_seq[(namespace, key)] = self._seq

    def _flush_touches(self) -> None:
        """Write buffered recency updates (called before eviction decisions
        and on close, so the on-disk LRU order reflects every hit)."""
        if not self._dirty_seq:
            return
        self._conn.executemany(
            "UPDATE cache SET seq = ? WHERE namespace = ? AND key = ?",
            [(seq, namespace, key)
             for (namespace, key), seq in self._dirty_seq.items()])
        self._dirty_seq.clear()

    def get(self, namespace: str, key: str) -> Optional[Any]:
        with self._lock:
            hot = self._hot_store(namespace)
            value = hot.get(key)
            if value is not None:
                hot.move_to_end(key)
                self.stats.memory_hits += 1
                self._touch(namespace, key)
                return value
            row = self._conn.execute(
                "SELECT payload FROM cache WHERE namespace = ? AND key = ?",
                (namespace, key)).fetchone()
            if row is None:
                self.stats.misses += 1
                return None
            _, decode = self._codec(namespace)
            try:
                value = decode(json.loads(row[0]))
            except Exception:
                # A stale or incompatible payload (e.g. written by an older
                # schema of the entry types) must not poison the cache.
                self._conn.execute(
                    "DELETE FROM cache WHERE namespace = ? AND key = ?",
                    (namespace, key))
                self._conn.commit()
                self.stats.misses += 1
                return None
            self.stats.disk_hits += 1
            self._remember(namespace, key, value)
            self._touch(namespace, key)
            return value

    def put(self, namespace: str, key: str, value: Any) -> None:
        encode, _ = self._codec(namespace)
        payload = json.dumps(encode(value), sort_keys=True)
        with self._lock:
            self._flush_touches()
            self._seq += 1
            self._conn.execute(
                "INSERT OR REPLACE INTO cache (namespace, key, payload, seq) "
                "VALUES (?, ?, ?, ?)", (namespace, key, payload, self._seq))
            self.stats.writes += 1
            self._remember(namespace, key, value)
            self._evict(namespace)
            self._conn.commit()

    def _evict(self, namespace: str) -> None:
        count = self._conn.execute(
            "SELECT COUNT(*) FROM cache WHERE namespace = ?",
            (namespace,)).fetchone()[0]
        excess = count - self.max_entries
        if excess <= 0:
            return
        victims = self._conn.execute(
            "SELECT key FROM cache WHERE namespace = ? ORDER BY seq ASC LIMIT ?",
            (namespace, excess)).fetchall()
        hot = self._hot_store(namespace)
        for (key,) in victims:
            self._conn.execute(
                "DELETE FROM cache WHERE namespace = ? AND key = ?",
                (namespace, key))
            hot.pop(key, None)
            self._dirty_seq.pop((namespace, key), None)
            self.stats.evictions += 1

    def sizes(self) -> Dict[str, int]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT namespace, COUNT(*) FROM cache GROUP BY namespace").fetchall()
            return {namespace: count for namespace, count in rows}

    def clear(self) -> None:
        with self._lock:
            self._conn.execute("DELETE FROM cache")
            self._conn.commit()
            self._hot.clear()
            self._dirty_seq.clear()

    def close(self) -> None:
        with self._lock:
            # Idempotent: Session.close() documents that a second close is a
            # no-op, and sqlite3 raises on operating on a closed connection.
            if self._closed:
                return
            self._closed = True
            self._flush_touches()
            self._conn.commit()
            self._conn.close()

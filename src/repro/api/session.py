"""The :class:`Session` facade — the one blessed entry point of the repo.

A session owns the four shared resources of the frontend → normalize →
schedule → measure pipeline:

* a machine model and thread count,
* a content-addressed :class:`~repro.api.cache.NormalizationCache`,
* one transfer-tuning :class:`~repro.scheduler.database.TuningDatabase`,
* lazily-created scheduler instances resolved through the plugin registry.

Typical use::

    from repro.api import Session

    session = Session(threads=12)
    session.tune("gemm:a")                      # seed the database
    response = session.schedule("gemm:b")       # served via transfer tuning
    print(response.summary(), session.report().summary())

``schedule_batch`` fans a list of workloads through a thread pool sharing
the same cache and database, which is the seam every scaling feature
(sharding, async serving, multi-backend) plugs into; the serving layer's
multi-process :class:`~repro.serving.workers.WorkerPool` is its
process-level analogue, one session per worker over one shared SQLite
cache file.
"""

from __future__ import annotations

import json
import math
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..interp.executor import programs_equivalent, run_program
from ..ir.nodes import Loop, Program
from ..normalization.pipeline import NormalizationOptions
from ..observability import MetricsRegistry, Tracer, register_process_metrics
from ..observability.tracing import span as trace_span
from ..passes.registry import (PipelineRegistryError, has_pipeline,
                               pipeline_names)
from ..perf.cache import CacheHierarchy, CacheReport
from ..perf.machine import DEFAULT_MACHINE, MachineModel
from ..perf.model import CostModel
from ..perf.trace import TraceGenerator
from ..scheduler.base import Scheduler
from ..scheduler.database import TuningDatabase, apply_feedback_record
from ..scheduler.embedding import embed_nest
from ..scheduler.evolutionary import SearchConfig
from ..scheduler.tiramisu import MctsConfig
from ..workloads import registry as workload_registry
from .backends import CacheBackend, SQLiteCacheBackend
from .cache import NormalizationCache, ResponseEntry
from .hashing import fingerprint, program_content_hash, request_fingerprint
from .registry import (FRONTENDS, SCHEDULERS, RegistryError, create_scheduler,
                       scheduler_normalizes, scheduler_tunes)
from .types import (EncodedScheduleResponse, ExecuteResponse,
                    NormalizeResponse, ProgramLike, ScheduleRequest,
                    ScheduleResponse, SessionReport)

#: Items accepted by :meth:`Session.schedule_batch`.
BatchItem = Union[ScheduleRequest, ProgramLike,
                  Tuple[ProgramLike, Mapping[str, int]]]


class Session:
    """One configured pipeline instance; thread-safe for batch scheduling."""

    def __init__(self,
                 machine: Optional[MachineModel] = None,
                 threads: int = 1,
                 normalization: Optional[NormalizationOptions] = None,
                 pipeline: Optional[str] = None,
                 scheduler: str = "daisy",
                 search: Optional[SearchConfig] = None,
                 mcts: Optional[MctsConfig] = None,
                 size: str = "large",
                 database: Optional[TuningDatabase] = None,
                 cache: Optional[NormalizationCache] = None,
                 cache_backend: Optional[CacheBackend] = None,
                 cache_path: Optional[str] = None,
                 max_workers: Optional[int] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None):
        if scheduler not in SCHEDULERS:
            raise RegistryError(
                f"unknown scheduler {scheduler!r}; registered: {SCHEDULERS.names()}")
        self.machine = machine or DEFAULT_MACHINE
        self.threads = threads
        # ``pipeline`` is the registry-named shorthand for ``normalization``
        # (e.g. "a-priori", "no-fission"); pass one or the other, not both.
        # Validated eagerly, like the scheduler name above: a typo must fail
        # at construction, not on the first request of a booted server.
        if pipeline is not None and normalization is not None:
            raise ValueError("pass either normalization= options or a "
                             "pipeline= name, not both")
        if pipeline is not None:
            if not has_pipeline(pipeline):
                raise PipelineRegistryError(
                    f"unknown pipeline {pipeline!r}; "
                    f"registered: {pipeline_names()}")
            normalization = NormalizationOptions.named(pipeline)
        self.normalization = normalization or NormalizationOptions()
        self.default_scheduler = scheduler
        self.search = search
        self.mcts = mcts
        self.size = size
        self.database = database if database is not None else TuningDatabase()
        if cache is not None and (cache_backend is not None or cache_path is not None):
            raise ValueError(
                "pass either a ready cache= or a cache_backend=/cache_path= "
                "for the session to build one, not both")
        # The session owns (and may close) the cache only when it built both
        # the cache and its backend; injected ones may be shared elsewhere.
        self._owns_cache = cache is None and cache_backend is None
        # One metrics registry per session: cache, service, and session
        # instruments all land here.  An injected cache brings its own
        # registry (already holding the cache instruments), which the
        # session adopts unless the caller supplied one explicitly.
        if metrics is None:
            metrics = cache.metrics if cache is not None else MetricsRegistry()
        self.metrics = metrics
        if cache is None:
            # ``cache_path`` is shorthand for a persistent SQLite backend;
            # an explicit ``cache_backend`` wins over it.
            if cache_backend is None and cache_path is not None:
                cache_backend = SQLiteCacheBackend(cache_path)
            cache = (NormalizationCache(backend=cache_backend, metrics=metrics)
                     if cache_backend is not None
                     else NormalizationCache(metrics=metrics))
        self.cache = cache
        self.max_workers = max_workers
        # One tracer per session/process; serving layers share it so
        # request spans from every layer land in the same ring buffer.
        self.tracer = tracer if tracer is not None else Tracer()
        register_process_metrics(self.metrics)
        self._metric_calls = self.metrics.counter(
            "repro_session_calls_total",
            "Session entry-point calls by kind.", ("kind",))
        self._metric_feedback = self.metrics.counter(
            "repro_feedback_measurements_total",
            "Executed-schedule timings fed back into the tuning database, "
            "by outcome (applied / added / skipped).", ("outcome",))

        self._lock = threading.RLock()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._schedulers: Dict[Tuple[str, int], Scheduler] = {}
        self._cost_models: Dict[int, CostModel] = {}
        # Frozen masters of named-workload resolutions; _resolve() hands out
        # copy-on-write snapshots instead of rebuilding the IR per request.
        self._resolved: Dict[str, Tuple[Program, Optional[Dict[str, int]]]] = {}
        # Session half of the response-cache key (request-independent).
        self._response_salt: Optional[str] = None
        self._schedule_calls = 0
        self._tune_calls = 0
        self._batch_calls = 0
        self._execute_calls = 0
        self._coalesced_requests = 0
        self._feedback = {"applied": 0, "added": 0, "skipped": 0}

    # -- loading ---------------------------------------------------------------------

    def load(self, source: ProgramLike, *, variant: Optional[str] = None,
             frontend: Optional[str] = None, name: Optional[str] = None) -> Program:
        """Resolve anything program-like into an IR :class:`Program`.

        Accepts an IR program (returned unchanged), a workload-registry name
        (``"gemm"``, ``"gemm:b"``, ``"cloudsc"``, ``"erosion"``), or source
        text for a registered frontend (default: the C-like language).
        """
        program, _ = self._resolve(source, variant=variant, frontend=frontend,
                                   name=name)
        return program

    def _resolve(self, source: ProgramLike, *, variant: Optional[str] = None,
                 frontend: Optional[str] = None, name: Optional[str] = None
                 ) -> Tuple[Program, Optional[Dict[str, int]]]:
        """Resolve ``source``; also return default parameters when known."""
        if isinstance(source, Program):
            return source, None
        if not isinstance(source, str):
            raise TypeError(f"cannot load {type(source).__name__}; "
                            "expected Program, workload name, or source text")

        text = source.strip()
        # Named workloads resolve deterministically (registry builders and
        # pinned fuzz programs are pure), so the session keeps one frozen
        # master per name and serves copy-on-write snapshots — repeat
        # requests skip the IR rebuild entirely.
        cache_key = f"{text}|{variant or ''}"
        with self._lock:
            cached = self._resolved.get(cache_key)
        if cached is not None:
            master, parameters = cached
            return master.snapshot(), (dict(parameters)
                                       if parameters is not None else None)

        workload, _, suffix = text.partition(":")
        resolved: Optional[Tuple[Program, Optional[Dict[str, int]]]] = None
        if workload == "cloudsc":
            from ..workloads.cloudsc import build_cloudsc_model
            resolved = build_cloudsc_model(), None
        elif workload == "erosion":
            from ..workloads.cloudsc import build_erosion_kernel
            resolved = build_erosion_kernel(), None
        elif workload == "fuzz":
            resolved = workload_registry.fuzz_program(suffix)
        elif workload in workload_registry.benchmark_names():
            spec = workload_registry.benchmark(workload)
            program = spec.variant(suffix or variant or "a")
            resolved = program, dict(spec.sizes(self.size))
        if resolved is not None:
            master, parameters = resolved
            master.freeze()
            with self._lock:
                self._resolved[cache_key] = (master, parameters)
            return master.snapshot(), (dict(parameters)
                                       if parameters is not None else None)

        if frontend is None and ("\n" in source or "{" in source or "=" in source):
            frontend = "clike"
        if frontend is not None:
            parse = FRONTENDS.get(frontend)
            program = parse(source, name or f"{frontend}_program")
            return program, None
        raise RegistryError(
            f"{source!r} is neither a known workload "
            f"({workload_registry.benchmark_names()}) nor parseable source text")

    # -- schedulers -------------------------------------------------------------------

    def scheduler(self, name: Optional[str] = None,
                  threads: Optional[int] = None) -> Scheduler:
        """The (lazily created, cached) scheduler instance for ``name``."""
        name = name or self.default_scheduler
        threads = self.threads if threads is None else threads
        key = (name, threads)
        with self._lock:
            instance = self._schedulers.get(key)
            if instance is None:
                options: Dict[str, Any] = {"search": self.search, "mcts": self.mcts}
                # Every scheduler whose registration says it tunes works
                # against the session database (registry metadata, not a
                # hard-coded name, so third-party schedulers join in).
                if scheduler_tunes(name):
                    options["database"] = self.database
                instance = create_scheduler(name, machine=self.machine,
                                            threads=threads, **options)
                self._schedulers[key] = instance
            return instance

    def _cost_model(self, threads: Optional[int] = None) -> CostModel:
        threads = self.threads if threads is None else threads
        with self._lock:
            model = self._cost_models.get(threads)
            if model is None:
                model = CostModel(self.machine, threads)
                self._cost_models[threads] = model
            return model

    # -- normalization ----------------------------------------------------------------

    def normalize(self, source: ProgramLike,
                  options: Optional[NormalizationOptions] = None, *,
                  pipeline: Optional[str] = None) -> NormalizeResponse:
        """Run a-priori normalization through the content-addressed cache.

        ``pipeline`` selects a registered pipeline by name for this call;
        without it, ``options`` (or the session default) applies.
        """
        if pipeline is not None:
            if options is not None:
                raise ValueError("pass either options= or pipeline=, not both")
            options = NormalizationOptions.named(pipeline)
        program = self.load(source)
        entry = self.cache.normalized(program, options or self.normalization)
        # Cache keys are name-insensitive: a hit may carry the program name
        # of whoever populated the entry.  Serve under the caller's name,
        # like the schedule-cache-hit path does.
        entry.program.name = program.name
        return NormalizeResponse(program=entry.program, report=entry.report,
                                 input_hash=entry.input_hash,
                                 canonical_hash=entry.canonical_hash,
                                 cache_hit=entry.hit)

    # -- scheduling -------------------------------------------------------------------

    def schedule(self, request: Union[ScheduleRequest, ProgramLike],
                 parameters: Optional[Mapping[str, int]] = None,
                 scheduler: Optional[str] = None, *,
                 threads: Optional[int] = None,
                 label: Optional[str] = None,
                 normalize: Optional[bool] = None,
                 tune: bool = False,
                 pipeline: Optional[str] = None) -> ScheduleResponse:
        """Schedule one program; cached at both the normalization and the
        schedule level.  Returns a :class:`ScheduleResponse`."""
        if not isinstance(request, ScheduleRequest):
            request = ScheduleRequest(program=request, parameters=parameters,
                                      scheduler=scheduler, threads=threads,
                                      label=label, normalize=normalize, tune=tune,
                                      pipeline=pipeline)
        return self._schedule(request)

    def tune(self, source: Union[ScheduleRequest, ProgramLike],
             parameters: Optional[Mapping[str, int]] = None,
             label: Optional[str] = None,
             scheduler: Optional[str] = None) -> ScheduleResponse:
        """Tune a program and record its recipes in the session database."""
        return self.schedule(source, parameters, scheduler, label=label, tune=True)

    def seed(self, workloads: Iterable[ProgramLike],
             variant: str = "a") -> List[ScheduleResponse]:
        """Seed the database from the (normalized) ``variant`` of each workload."""
        responses = []
        for workload in workloads:
            if isinstance(workload, str) and ":" not in workload:
                label = workload
                workload = f"{workload}:{variant}"
            else:
                label = None
            responses.append(self.tune(workload, label=label))
        return responses

    def estimate(self, source: Union[ScheduleRequest, ProgramLike],
                 parameters: Optional[Mapping[str, int]] = None,
                 scheduler: Optional[str] = None, *,
                 threads: Optional[int] = None,
                 normalize: Optional[bool] = None) -> float:
        """Schedule and return the modeled runtime in seconds."""
        return self.schedule(source, parameters, scheduler, threads=threads,
                             normalize=normalize).runtime_s

    def _schedule(self, request: ScheduleRequest) -> ScheduleResponse:
        trace_context = getattr(request, "trace", None)
        if not trace_context or not self.tracer.enabled:
            return self._schedule_impl(request)
        # A serving layer propagated a trace context (possibly from another
        # process): re-activate it so pass/cache/search spans recorded below
        # parent under the coordinator's span for this request.
        with self.tracer.activate(trace_context):
            with trace_span("session.schedule",
                            scheduler=request.scheduler
                            or self.default_scheduler) as span:
                response = self._schedule_impl(request)
                span.set_attributes(
                    from_cache=response.from_cache,
                    normalization_cache_hit=response.normalization_cache_hit)
                response.trace_id = trace_context.get("trace_id")
                return response

    def _schedule_impl(self, request: ScheduleRequest) -> ScheduleResponse:
        program, default_parameters = self._resolve(request.program)
        parameters = (dict(request.parameters) if request.parameters is not None
                      else default_parameters)
        if parameters is None:
            raise ValueError(
                f"no parameters given for {program.name!r} and none derivable "
                "from the workload registry")

        name = request.scheduler or self.default_scheduler
        instance = self.scheduler(name, request.threads)
        threads = instance.threads
        normalizes = (scheduler_normalizes(name) if request.normalize is None
                      else request.normalize)
        if request.pipeline is not None and not normalizes:
            # Mirror the eager Session(pipeline=, normalization=) conflict
            # check: a pipeline on a request that skips normalization would
            # be silently inert (and spoil coalescing fingerprints).
            raise ValueError(
                f"request selects pipeline {request.pipeline!r} but "
                f"normalization is disabled for it "
                f"(scheduler {name!r}, normalize={request.normalize})")

        if request.tune:
            if not scheduler_tunes(name):
                raise RegistryError(
                    f"scheduler {name!r} does not support tuning (no database)")
            with self._lock:
                self._tune_calls += 1
            self._metric_calls.labels("tune").inc()
            normalization = (self.normalize(program, pipeline=request.pipeline)
                             if normalizes else None)
            target = normalization.program if normalization else program.copy()
            result = instance.tune(target, parameters,
                                   label=request.label or program.name)
            runtime = instance.cost_model.estimate_seconds(result.program, parameters)
            return ScheduleResponse(
                request=request, scheduler=name, program=result.program,
                result=result, runtime_s=runtime, normalized=normalizes,
                input_hash=normalization.input_hash if normalization else None,
                canonical_hash=normalization.canonical_hash if normalization else None,
                normalization_cache_hit=bool(normalization and normalization.cache_hit))

        with self._lock:
            self._schedule_calls += 1
        self._metric_calls.labels("schedule").inc()

        if normalizes:
            normalization = self.normalize(program, pipeline=request.pipeline)
            target = normalization.program
            content_key = normalization.canonical_hash
            input_hash = normalization.input_hash
            norm_hit = normalization.cache_hit
        else:
            normalization = None
            target = program
            content_key = program_content_hash(program)
            input_hash = content_key
            norm_hit = False

        # Database-backed schedulers key on the database version too: a
        # tune() in between grows the database, and a schedule cached before
        # it must not shadow the transfer-tuned schedule available after.
        # The version is content-derived (not the entry count): with a
        # persistent cache, two different databases of equal size must not
        # share cached schedules.
        database = getattr(instance, "database", None)
        if database is not None:
            database_version = getattr(database, "version", None)
            if database_version is None:
                database_version = len(database)
        else:
            database_version = None
        key = self.cache.schedule_key(
            content_key, name, threads, parameters,
            database_version=database_version)
        cached = self.cache.lookup_schedule(key)
        if cached is not None:
            result, runtime = cached
            # The cached schedule came from a normalized-equivalent program;
            # keep the caller's program name on the served copy.
            result.program.name = program.name
            return ScheduleResponse(
                request=request, scheduler=name, program=result.program,
                result=result, runtime_s=runtime, normalized=normalizes,
                input_hash=input_hash,
                canonical_hash=content_key if normalizes else None,
                from_cache=True, normalization_cache_hit=norm_hit)

        with trace_span("scheduler.search", scheduler=name, threads=threads):
            result = instance.schedule(target, parameters)
        runtime = instance.cost_model.estimate_seconds(result.program, parameters)
        self.cache.store_schedule(key, result, runtime)
        return ScheduleResponse(
            request=request, scheduler=name, program=result.program,
            result=result, runtime_s=runtime, normalized=normalizes,
            input_hash=input_hash,
            canonical_hash=content_key if normalizes else None,
            normalization_cache_hit=norm_hit)

    # -- response fast lane -------------------------------------------------------------

    def _response_salt_value(self) -> str:
        # Request fingerprints exclude session defaults, but sessions with
        # different configurations may share one persistent cache file; the
        # salt keys entries by everything the session itself contributes to
        # a response (built once — all components are construction-time).
        salt = self._response_salt
        if salt is None:
            salt = fingerprint({
                "scheduler": self.default_scheduler,
                "threads": self.threads,
                "size": self.size,
                "normalization": self.normalization,
            })
            self._response_salt = salt
        return salt

    def _response_key(self, request: ScheduleRequest) -> Optional[str]:
        """Response-cache key of ``request``, or ``None`` when the request
        can never be served from it (tune requests mutate the database)."""
        if request.tune:
            return None
        # The live database version invalidates fast-lane entries the moment
        # tuning grows the database, exactly like the schedule-level key.
        instance = self.scheduler(request.scheduler or self.default_scheduler,
                                  request.threads)
        database = getattr(instance, "database", None)
        if database is not None:
            version = getattr(database, "version", None)
            if version is None:
                version = len(database)
        else:
            version = None
        return "|".join((request_fingerprint(request),
                         self._response_salt_value(), str(version)))

    def probe_response(self, request: ScheduleRequest
                       ) -> Optional[ResponseEntry]:
        """Probe the response-level cache for ``request`` (no assembly).

        A serving layer splits probe from :meth:`assemble_response` so it
        can attach its trace context to the request between the two; plain
        callers use :meth:`lookup_response`.  Returns ``None`` on a miss.
        """
        try:
            key = self._response_key(request)
        except (RegistryError, TypeError, ValueError):
            return None  # the slow path will produce the real error
        if key is None:
            return None
        return self.cache.lookup_response(key)

    def assemble_response(self, entry: ResponseEntry,
                          request: ScheduleRequest) -> EncodedScheduleResponse:
        """Final response bytes for a :meth:`probe_response` hit.

        Only the per-request echo (and the trace id, when the request
        carries a trace context) is encoded fresh; everything else is the
        entry's pre-encoded text.
        """
        text = entry.before + json.dumps(request.to_dict()) + entry.after
        trace_id = (request.trace or {}).get("trace_id")
        if trace_id is not None:
            text = text[:-1] + ', "trace_id": ' + json.dumps(trace_id) + "}"
        self._metric_calls.labels("fast_lane").inc()
        return EncodedScheduleResponse(text)

    def lookup_response(self, request: ScheduleRequest
                        ) -> Optional[EncodedScheduleResponse]:
        """Serve ``request`` from the response-level cache, if possible.

        A hit returns the final response JSON assembled from pre-encoded
        bytes — no session scheduling, no IR, no JSON parse.  Returns
        ``None`` on a miss.
        """
        entry = self.probe_response(request)
        if entry is None:
            return None
        return self.assemble_response(entry, request)

    def store_response(self, request: ScheduleRequest, response: Any) -> None:
        """Store ``response``'s encoded bytes for the fast lane.

        Only fully cache-served responses are stored (``from_cache`` and
        ``normalization_cache_hit`` both set): those are exactly the
        responses a repeat of ``request`` through the slow path would
        reproduce byte for byte, so the fast lane can never serve bytes the
        session itself would not.
        """
        data = response.to_dict()
        if not (data.get("from_cache") and data.get("normalization_cache_hit")):
            return
        try:
            key = self._response_key(request)
        except (RegistryError, TypeError, ValueError):
            return
        if key is None:
            return
        data = dict(data)
        data.pop("trace_id", None)
        keys = list(data)
        split = keys.index("request")
        head = json.dumps({name: data[name] for name in keys[:split]})
        tail = json.dumps({name: data[name] for name in keys[split + 1:]})
        # before + json.dumps(request.to_dict()) + after reproduces
        # json.dumps(data) byte for byte, with the echo spliced per request.
        before = head[:-1] + ', "request": '
        after = ", " + tail[1:]
        self.cache.store_response(key, ResponseEntry(before, after))

    def schedule_encoded(self, request: Union[ScheduleRequest, ProgramLike]
                         ) -> Union[ScheduleResponse, EncodedScheduleResponse]:
        """Schedule through the response fast lane.

        Repeat requests whose response is fully cache-served come back as
        an :class:`EncodedScheduleResponse` (pre-encoded bytes); everything
        else takes the normal :meth:`schedule` path, feeding the fast lane
        for the next repeat.
        """
        if not isinstance(request, ScheduleRequest):
            request = ScheduleRequest(program=request)
        encoded = self.lookup_response(request)
        if encoded is not None:
            return encoded
        response = self.schedule(request)
        self.store_response(request, response)
        return response

    # -- batching ---------------------------------------------------------------------

    def schedule_batch(self, items: Sequence[BatchItem],
                       max_workers: Optional[int] = None,
                       return_exceptions: bool = False) -> List[ScheduleResponse]:
        """Schedule many programs concurrently, sharing one cache and database.

        Results are returned in input order; scheduled programs and runtimes
        are identical to sequential ``schedule()`` calls, because every stage
        a worker runs (normalization, database lookup, deterministic per-call
        search) is a pure function of the session state at batch entry.  Only
        the ``from_cache`` / ``normalization_cache_hit`` bookkeeping flags can
        differ: two equivalent items racing may both miss and compute the
        same result twice instead of one serving the other.

        With ``return_exceptions=True`` a failing item yields its exception
        in the result list instead of aborting the whole batch (the serving
        layer uses this so one bad request cannot fail its batchmates).
        """
        requests = [self._as_request(item) for item in items]
        tune_message = ("tune requests mutate the database and must "
                        "be issued sequentially, not via schedule_batch")
        if not return_exceptions:
            for request in requests:
                if request.tune:
                    raise ValueError(tune_message)
        with self._lock:
            self._batch_calls += 1
        self._metric_calls.labels("batch").inc()

        schedule = self._schedule
        if return_exceptions:
            def schedule(request):  # noqa: F811 - deliberate wrapper
                # Tune items yield their rejection in-band too, so one bad
                # item never aborts the batch in this mode.
                if request.tune:
                    return ValueError(tune_message)
                try:
                    return self._schedule(request)
                except Exception as error:  # noqa: BLE001 - handed to caller
                    return error

        explicit_cap = max_workers or self.max_workers
        workers = explicit_cap or min(8, max(1, len(requests)))
        if workers <= 1 or len(requests) <= 1:
            return [schedule(request) for request in requests]
        if explicit_cap:
            # An explicit cap bounds concurrency exactly (callers use it to
            # limit CPU/memory): a dedicated pool of that width honors it.
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(schedule, requests))
        # Uncapped batches reuse one shared executor: a serving layer calls
        # schedule_batch once per micro-batch, and spawning/joining a fresh
        # pool every few milliseconds is pure overhead.
        return list(self._shared_executor().map(schedule, requests))

    _SHARED_POOL_WIDTH = 8

    def _shared_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._SHARED_POOL_WIDTH,
                    thread_name_prefix="repro-session")
            return self._executor

    def close(self) -> None:
        """Release the batch executor, and the cache backend if this session
        created it (an injected ``cache=`` may be shared with other sessions
        and stays open).  Idempotent."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        if self._owns_cache:
            self.cache.close()

    @staticmethod
    def _as_request(item: BatchItem) -> ScheduleRequest:
        if isinstance(item, ScheduleRequest):
            return item
        if isinstance(item, tuple):
            program, parameters = item
            return ScheduleRequest(program=program, parameters=parameters)
        return ScheduleRequest(program=item)

    # -- measurement and execution ----------------------------------------------------

    def evaluate(self, source: ProgramLike,
                 parameters: Optional[Mapping[str, int]] = None, *,
                 threads: Optional[int] = None,
                 assume_warm_caches: bool = False) -> float:
        """Modeled runtime of a program *as given* (no scheduling)."""
        program, default_parameters = self._resolve(source)
        parameters = parameters if parameters is not None else default_parameters
        if parameters is None:
            raise ValueError(f"no parameters given for {program.name!r}")
        return self._cost_model(threads).estimate_seconds(
            program, parameters, assume_warm_caches=assume_warm_caches)

    def cache_report(self, source: ProgramLike,
                     parameters: Mapping[str, int]) -> CacheReport:
        """Run the address trace of a program through the cache simulator."""
        program = self.load(source)
        trace = TraceGenerator(program, parameters).trace()
        return CacheHierarchy(self.machine).run_trace(trace)

    def execute(self, source: ProgramLike,
                parameters: Optional[Mapping[str, int]] = None,
                inputs: Optional[Mapping[str, np.ndarray]] = None,
                seed: int = 0) -> ExecuteResponse:
        """Interpret a program on concrete (or reproducible random) inputs."""
        program, default_parameters = self._resolve(source)
        parameters = (dict(parameters) if parameters is not None
                      else default_parameters)
        if parameters is None:
            raise ValueError(f"no parameters given for {program.name!r}")
        with self._lock:
            self._execute_calls += 1
        self._metric_calls.labels("execute").inc()
        outputs = run_program(program, parameters, inputs, seed)
        return ExecuteResponse(program=program, parameters=dict(parameters),
                               outputs=dict(outputs))

    def equivalent(self, first: ProgramLike, second: ProgramLike,
                   parameters: Mapping[str, int], **kwargs: Any) -> bool:
        """Observational equivalence of two programs on random inputs."""
        return programs_equivalent(self.load(first), self.load(second),
                                   parameters, **kwargs)

    # -- online feedback ---------------------------------------------------------------

    def measurement_feedback(self, response: Any,
                             measured: Union[float, Any]
                             ) -> List[Dict[str, Any]]:
        """Feedback records of one executed schedule, without applying them.

        ``response`` is the :class:`ScheduleResponse` whose schedule was
        executed and ``measured`` its measured wall seconds (a bare float,
        or anything with a ``median`` attribute such as a measurement
        result).  Each per-nest recipe of the response yields one
        plain-JSON record — the nest's embedding under the same
        normalization the scheduler queried with, the recipe, the measured
        value, and the program-level measured/predicted ratio — ready for
        :func:`~repro.scheduler.database.apply_feedback_record` against any
        tuning database (the worker pool ships these records to every
        worker).  Plain callers use :meth:`record_measurement`, which
        applies them to this session's database directly.
        """
        value = float(getattr(measured, "median", measured))
        if not math.isfinite(value) or value <= 0.0:
            raise ValueError("measured runtime must be positive and finite "
                             f"seconds, got {value!r}")
        request = response.request
        program, default_parameters = self._resolve(request.program)
        parameters = (dict(request.parameters)
                      if request.parameters is not None
                      else default_parameters)
        result = getattr(response, "result", None)
        nests = list(getattr(result, "nests", None) or ())
        if parameters is None or not nests:
            return []
        target = program
        if getattr(response, "normalized", False):
            # A cache hit end to end: the response's recipes were produced
            # against exactly this normalized form, so nest indices and
            # embeddings line up with what the scheduler queried.
            target = self.normalize(program, pipeline=request.pipeline).program
        predicted = getattr(response, "runtime_s", None)
        scale = (value / float(predicted)
                 if predicted and float(predicted) > 0.0 else None)
        label = request.label or program.name
        records: List[Dict[str, Any]] = []
        for info in nests:
            recipe = getattr(info, "recipe", None)
            if recipe is None:
                continue
            index = info.nest_index
            nest = (target.body[index]
                    if 0 <= index < len(target.body) else None)
            if not isinstance(nest, Loop):
                # Nothing to embed (the IR moved under us): an explicit
                # skip record, so appliers can count what was dropped.
                records.append({"embedding": None, "nest_index": index,
                                "recipe": recipe.to_dict()})
                continue
            embedding = embed_nest(nest, target.arrays, parameters,
                                   label=f"{label}#{index}")
            records.append({
                "embedding": list(embedding.vector),
                "label": embedding.label,
                "recipe": recipe.to_dict(),
                "measured": value,
                "scale": scale,
                "nest_index": index,
            })
        return records

    def record_measurement(self, response: Any,
                           measured: Union[float, Any]) -> Dict[str, int]:
        """Feed an executed schedule's measured wall time back into the
        tuning database, so nearest-neighbor seeding re-ranks by how
        transferred recipes actually performed.

        Closes the measurement-to-policy loop online: the matched entries'
        measured-vs-predicted ratio biases every later query
        (:meth:`~repro.scheduler.database.TuningDatabase.scored_query`), and
        the database's content version advances, so schedule- and
        response-level cache entries for affected programs revalidate
        instead of serving the pre-feedback ranking.  Returns outcome
        counts ``{"applied", "added", "skipped"}``; the same counts feed
        ``repro_feedback_measurements_total`` and :meth:`report`.
        """
        counts = {"applied": 0, "added": 0, "skipped": 0}
        for record in self.measurement_feedback(response, measured):
            counts[apply_feedback_record(record, self.database)] += 1
        self.note_feedback(counts)
        return counts

    def note_feedback(self, counts: Mapping[str, int]) -> None:
        """Fold feedback outcome counts into this session's report and
        metrics (the worker pool applies records itself and accounts for
        them here)."""
        with self._lock:
            for outcome, count in counts.items():
                if count:
                    self._feedback[outcome] = \
                        self._feedback.get(outcome, 0) + count
        for outcome, count in counts.items():
            if count:
                self._metric_feedback.labels(outcome).inc(count)

    # -- introspection ----------------------------------------------------------------

    def record_coalesced(self, count: int = 1) -> None:
        """Count ``count`` requests a serving layer coalesced into an
        identical in-flight request (surfaced by :meth:`report`)."""
        with self._lock:
            self._coalesced_requests += count

    def report(self) -> SessionReport:
        """Counters: calls, cache hits/misses, backend traffic, database size,
        per-pass normalization timings, and memoized-analysis traffic."""
        stats = self.cache.stats
        backend = self.cache.backend
        shard_sizes = getattr(self.database, "shard_sizes", None)
        analysis = self.cache.analysis
        with self._lock:
            return SessionReport(
                schedule_calls=self._schedule_calls,
                tune_calls=self._tune_calls,
                batch_calls=self._batch_calls,
                execute_calls=self._execute_calls,
                normalization_hits=stats.normalization_hits,
                normalization_misses=stats.normalization_misses,
                schedule_cache_hits=stats.schedule_hits,
                schedule_cache_misses=stats.schedule_misses,
                cache_evictions=backend.stats.evictions,
                database_entries=len(self.database),
                schedulers=sorted({name for name, _ in self._schedulers}),
                cache_backend=backend.name,
                cache_memory_hits=backend.stats.memory_hits,
                cache_disk_hits=backend.stats.disk_hits,
                cache_writes=backend.stats.writes,
                cache_busy_retries=backend.stats.busy_retries,
                coalesced_requests=self._coalesced_requests,
                response_cache_hits=stats.response_hits,
                response_cache_misses=stats.response_misses,
                database_shards=list(shard_sizes()) if callable(shard_sizes) else [],
                normalization_passes=self.cache.pass_stats.to_dict(),
                analysis_hits=analysis.hits,
                analysis_misses=analysis.misses,
                feedback_applied=self._feedback.get("applied", 0),
                feedback_added=self._feedback.get("added", 0),
                feedback_skipped=self._feedback.get("skipped", 0),
            )

"""Content addressing for programs.

The normalization cache and the schedule cache are keyed by *content hashes*
of programs.  Two hashes are used:

* :func:`program_content_hash` — the hash of a program's structure as
  written.  Two builds of the same variant hash equal; different variants do
  not.
* the *canonical-form hash* — :func:`program_content_hash` applied to the
  output of a-priori normalization.  Because normalization maps equivalent
  loop structures onto one canonical form (the paper's central claim),
  normalized-equivalent variants — e.g. GEMM in any of its six loop orders —
  share this hash, which is what lets one variant's schedule be served to
  another from the cache.

Hashes ignore incidental naming: the program name, statement labels, and the
declaration order of arrays and parameters do not affect the hash.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields, is_dataclass
from typing import Any, Dict, Mapping, Optional

from ..ir.nodes import Program
from ..ir.serialization import program_to_dict


def canonical_program_dict(program: Program) -> Dict[str, Any]:
    """A serialization of ``program`` with incidental naming stripped.

    The program name and per-statement names are replaced by empty strings,
    and arrays/parameters are sorted, so that the dictionary depends only on
    the loop structure, the access functions, and the array shapes.
    """
    data = program_to_dict(program)
    data["name"] = ""
    data["parameters"] = sorted(data["parameters"])
    data["arrays"] = sorted(data["arrays"], key=lambda entry: entry["name"])

    def strip(node: Dict[str, Any]) -> None:
        if node.get("kind") == "computation":
            node["name"] = ""
        for child in node.get("body", ()):
            strip(child)

    for node in data["body"]:
        strip(node)
    return data


def _stable_value(value: Any) -> Any:
    """Reduce configuration values to something JSON/stable-comparable."""
    if is_dataclass(value) and not isinstance(value, type):
        return {f.name: _stable_value(getattr(value, f.name)) for f in fields(value)}
    if isinstance(value, Mapping):
        return {str(k): _stable_value(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_stable_value(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def fingerprint(value: Any) -> str:
    """A short stable fingerprint of a configuration object (e.g. options)."""
    text = json.dumps(_stable_value(value), sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def program_content_hash(program: Program, extra: Optional[Any] = None) -> str:
    """SHA-256 content hash of a program (plus optional extra key material)."""
    payload = {"program": canonical_program_dict(program)}
    if extra is not None:
        payload["extra"] = _stable_value(extra)
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()

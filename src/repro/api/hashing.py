"""Content addressing for programs.

The normalization cache and the schedule cache are keyed by *content hashes*
of programs.  Two hashes are used:

* :func:`program_content_hash` — the hash of a program's structure as
  written.  Two builds of the same variant hash equal; different variants do
  not.
* the *canonical-form hash* — :func:`program_content_hash` applied to the
  output of a-priori normalization.  Because normalization maps equivalent
  loop structures onto one canonical form (the paper's central claim),
  normalized-equivalent variants — e.g. GEMM in any of its six loop orders —
  share this hash, which is what lets one variant's schedule be served to
  another from the cache.

Hashes ignore incidental naming: the program name, statement labels, and the
declaration order of arrays and parameters do not affect the hash.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields, is_dataclass
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional

from ..ir.canonical import canonical_program_json
from ..ir.nodes import Program
from ..ir.serialization import program_to_dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .types import ScheduleRequest


def canonical_program_dict(program: Program) -> Dict[str, Any]:
    """A serialization of ``program`` with incidental naming stripped.

    The program name and per-statement names are replaced by empty strings,
    and arrays/parameters are sorted, so that the dictionary depends only on
    the loop structure, the access functions, and the array shapes.
    """
    data = program_to_dict(program)
    data["name"] = ""
    data["parameters"] = sorted(data["parameters"])
    data["arrays"] = sorted(data["arrays"], key=lambda entry: entry["name"])

    def strip(node: Dict[str, Any]) -> None:
        if node.get("kind") == "computation":
            node["name"] = ""
        for child in node.get("body", ()):
            strip(child)

    for node in data["body"]:
        strip(node)
    return data


def _stable_value(value: Any) -> Any:
    """Reduce configuration values to something JSON/stable-comparable."""
    if is_dataclass(value) and not isinstance(value, type):
        return {f.name: _stable_value(getattr(value, f.name)) for f in fields(value)}
    if isinstance(value, Mapping):
        return {str(k): _stable_value(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_stable_value(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def fingerprint(value: Any) -> str:
    """A short stable fingerprint of a configuration object (e.g. options)."""
    text = json.dumps(_stable_value(value), sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def program_content_hash(program: Program, extra: Optional[Any] = None) -> str:
    """SHA-256 content hash of a program (plus optional extra key material).

    Hashes the exact bytes :func:`program_content_hash_reference` hashes, but
    assembles them from the IR's memoized canonical fragments
    (:mod:`repro.ir.canonical`) instead of re-walking the tree, so repeat
    hashes of a warm program cost only the program-level join.
    """
    body = canonical_program_json(program)
    if extra is None:
        text = '{"program": %s}' % body
    else:
        # "extra" sorts before "program"; both dumps use sort_keys so the
        # payload is byte-identical to the reference json.dumps of the dict.
        text = '{"extra": %s, "program": %s}' % (
            json.dumps(_stable_value(extra), sort_keys=True), body)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def program_content_hash_reference(program: Program,
                                   extra: Optional[Any] = None) -> str:
    """Reference implementation of :func:`program_content_hash`.

    Re-serializes the whole program per call (``program_to_dict`` +
    ``json.dumps``).  Kept as the executable specification the memoized fast
    path is fuzz-tested against (``tests/test_hash_consing.py``).
    """
    payload = {"program": canonical_program_dict(program)}
    if extra is not None:
        payload["extra"] = _stable_value(extra)
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def request_fingerprint(request: "ScheduleRequest") -> str:
    """Content hash identifying requests that must produce identical responses.

    Programs given as IR hash by structure (name-insensitive), so two
    clients submitting the same kernel coalesce even if they named it
    differently; registry names and source text hash as written.  The label
    is excluded: it only affects tuning provenance, and tune requests are
    rejected by the service anyway.

    Shared by the serving tier (request coalescing) and the session-level
    response cache (the fast lane), which must agree on what "the same
    request" means.
    """
    program = request.program
    if isinstance(program, Program):
        program_key = program_content_hash(program)
    else:
        program_key = str(program)
    return fingerprint({
        "program": program_key,
        # None (use registry defaults) and {} (schedule with no bindings)
        # resolve differently and must not coalesce onto one another.
        "parameters": (dict(request.parameters)
                       if request.parameters is not None else None),
        "scheduler": request.scheduler,
        "threads": request.threads,
        "normalize": request.normalize,
        # Different normalization pipelines produce different schedules;
        # they must never ride one another's in-flight request.
        "pipeline": request.pipeline,
    })

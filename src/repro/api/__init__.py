"""``repro.api`` — the unified pipeline facade.

This package is the one blessed entry point for every consumer (experiments,
examples, benchmarks, services): a :class:`Session` bundles the frontend →
normalize → schedule → measure pipeline behind typed requests/responses, a
content-addressed normalization cache, one shared transfer-tuning database,
and batch scheduling over a thread pool.

Plugins register through :func:`register_scheduler` / :func:`register_frontend`;
all built-in schedulers (daisy, polly, clang, icc, tiramisu, numpy, numba,
dace, evolutionary) and the C-like frontend are pre-registered.

Everything a pipeline consumer needs is importable from here — including the
configuration dataclasses, the workload registry, and the loop-level building
blocks used by the CLOUDSC case-study pipeline — so that consumer modules
never reach into ``repro.scheduler`` / ``repro.normalization`` directly.
"""

from ..analysis.parallelism import analyze_loop_parallelism
from ..interp.executor import programs_equivalent, run_program
from ..ir.builder import ProgramBuilder
from ..ir.nodes import Loop, Program
from ..ir.printer import to_pseudocode
from ..normalization.pipeline import (NormalizationOptions, NormalizationReport,
                                      normalize_program)
from ..normalization.scalar_expansion import contract_arrays
from ..observability import (Counter, Gauge, Histogram, MetricsRegistry,
                             merge_registry_dicts, render_registry_dict)
from ..passes import (AnalysisManager, FixedPoint, Pass, PassContext,
                      PassResult, PassStats, Pipeline, PipelineResult,
                      get_pipeline, pipeline_bit_exact, pipeline_names,
                      register_pipeline)
from ..perf.machine import DEFAULT_MACHINE, CacheLevel, MachineModel
from ..perf.model import CostModel
from ..scheduler.base import NestScheduleInfo, ScheduleResult, Scheduler
from ..scheduler.database import TuningDatabase
from ..scheduler.sharding import ShardedTuningDatabase, embedding_shard
from ..scheduler.evolutionary import SearchConfig
from ..scheduler.tiramisu import MctsConfig
from ..transforms.fusion import (fuse_adjacent_loops, fuse_chains_in_body,
                                 fuse_chains_in_loop)
from ..workloads.cloudsc import (WEAK_SCALING_POINTS, CloudscConfiguration,
                                 build_cloudsc_model, build_erosion_kernel)
from ..workloads.registry import (BenchmarkSpec, all_benchmarks, benchmark,
                                  benchmark_names, polybench_benchmarks)
from .backends import (BackendStats, CacheBackend, MemoryCacheBackend,
                       SQLiteCacheBackend)
from .cache import CacheStats, NormalizationCache
from .hashing import canonical_program_dict, fingerprint, program_content_hash
from .registry import (FRONTENDS, SCHEDULERS, PluginInfo, Registry,
                       RegistryError, create_scheduler, register_frontend,
                       register_scheduler, scheduler_normalizes,
                       scheduler_tunes)
from .session import Session
from .types import (ExecuteResponse, NormalizeResponse, ProgramLike,
                    ScheduleRequest, ScheduleResponse, SessionReport)

__all__ = [
    # facade
    "Session",
    "ScheduleRequest", "ScheduleResponse", "NormalizeResponse",
    "ExecuteResponse", "SessionReport", "ProgramLike",
    # observability
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "merge_registry_dicts", "render_registry_dict",
    # caching / content addressing
    "NormalizationCache", "CacheStats",
    "CacheBackend", "BackendStats", "MemoryCacheBackend", "SQLiteCacheBackend",
    "canonical_program_dict", "fingerprint", "program_content_hash",
    # registries
    "Registry", "RegistryError", "PluginInfo", "SCHEDULERS", "FRONTENDS",
    "register_scheduler", "register_frontend", "create_scheduler",
    "scheduler_normalizes", "scheduler_tunes",
    # configuration surface
    "NormalizationOptions", "NormalizationReport", "SearchConfig", "MctsConfig",
    "MachineModel", "CacheLevel", "DEFAULT_MACHINE", "CostModel",
    # pass framework
    "Pass", "PassContext", "PassResult", "PassStats", "Pipeline",
    "PipelineResult", "FixedPoint", "AnalysisManager",
    "register_pipeline", "get_pipeline", "pipeline_names",
    "pipeline_bit_exact",
    # scheduler interface types
    "Scheduler", "ScheduleResult", "NestScheduleInfo", "TuningDatabase",
    "ShardedTuningDatabase", "embedding_shard",
    # IR / execution conveniences
    "Program", "ProgramBuilder", "Loop", "to_pseudocode",
    "normalize_program", "programs_equivalent", "run_program",
    # workloads
    "BenchmarkSpec", "all_benchmarks", "benchmark", "benchmark_names",
    "polybench_benchmarks",
    "CloudscConfiguration", "build_cloudsc_model", "build_erosion_kernel",
    "WEAK_SCALING_POINTS",
    # loop-level building blocks (CLOUDSC pipeline)
    "analyze_loop_parallelism", "contract_arrays", "fuse_adjacent_loops",
    "fuse_chains_in_body", "fuse_chains_in_loop",
]

"""Content-addressed normalization and schedule caching.

The cache has two levels, both keyed by content hashes
(:mod:`repro.api.hashing`) and safe to share across the threads of a
:meth:`repro.api.Session.schedule_batch` fan-out:

* **normalization level** — ``hash(program as written) -> normalized program``.
  Re-scheduling the same program skips fission + stride minimization.
* **schedule level** — ``hash(canonical form) -> scheduled program``.
  Because a-priori normalization maps equivalent variants onto one canonical
  form, scheduling the B variant of a benchmark after the A variant (or GEMM
  in a second loop order) is served from the cache without re-running the
  scheduler at all.

Entries are bounded by an LRU policy; cached programs are copied on every
hit so callers can freely mutate what they get back.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional, Tuple

from ..ir.nodes import Program
from ..normalization.pipeline import (NormalizationOptions,
                                      NormalizationReport, normalize)
from ..scheduler.base import ScheduleResult
from .hashing import fingerprint, program_content_hash


@dataclass
class CacheStats:
    """Hit/miss counters of the two cache levels."""

    normalization_hits: int = 0
    normalization_misses: int = 0
    schedule_hits: int = 0
    schedule_misses: int = 0
    evictions: int = 0

    @property
    def normalization_requests(self) -> int:
        return self.normalization_hits + self.normalization_misses

    @property
    def schedule_requests(self) -> int:
        return self.schedule_hits + self.schedule_misses

    def to_dict(self) -> Dict[str, int]:
        return {
            "normalization_hits": self.normalization_hits,
            "normalization_misses": self.normalization_misses,
            "schedule_hits": self.schedule_hits,
            "schedule_misses": self.schedule_misses,
            "evictions": self.evictions,
        }


@dataclass
class NormalizedEntry:
    """One cached normalization outcome.

    ``program`` is a private copy owned by the cache; :meth:`take` hands out
    fresh copies.
    """

    program: Program
    report: NormalizationReport
    input_hash: str
    canonical_hash: str
    hit: bool = False

    def take(self) -> "NormalizedEntry":
        return NormalizedEntry(self.program.copy(), self.report,
                               self.input_hash, self.canonical_hash, self.hit)


def _copy_result(result: ScheduleResult) -> ScheduleResult:
    """A ScheduleResult whose program the receiver may freely mutate."""
    return ScheduleResult(
        scheduler=result.scheduler,
        program=result.program.copy(),
        nests=list(result.nests),
        unsupported=result.unsupported,
        notes=result.notes,
    )


@dataclass
class ScheduleEntry:
    """One cached scheduling outcome (per scheduler/parameters/canonical form)."""

    result: ScheduleResult
    runtime_s: float

    def take(self) -> Tuple[ScheduleResult, float]:
        return _copy_result(self.result), self.runtime_s


class NormalizationCache:
    """Two-level content-addressed cache shared by one (or more) sessions."""

    def __init__(self, max_entries: int = 1024):
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._normalized: "OrderedDict[str, NormalizedEntry]" = OrderedDict()
        self._schedules: "OrderedDict[Hashable, ScheduleEntry]" = OrderedDict()

    # -- normalization level -----------------------------------------------------

    def normalized(self, program: Program,
                   options: Optional[NormalizationOptions] = None) -> NormalizedEntry:
        """Normalize ``program`` through the cache.

        Returns a :class:`NormalizedEntry` whose ``program`` is a fresh copy;
        ``hit`` records whether fission/stride minimization were skipped.
        """
        options = options or NormalizationOptions()
        key = program_content_hash(program, extra={"options": fingerprint(options)})
        with self._lock:
            entry = self._normalized.get(key)
            if entry is not None:
                self._normalized.move_to_end(key)
                self.stats.normalization_hits += 1
                served = entry.take()
                served.hit = True
                return served
            self.stats.normalization_misses += 1

        normalized, report = normalize(program, options)
        canonical_hash = program_content_hash(normalized)
        entry = NormalizedEntry(normalized, report, key, canonical_hash)
        with self._lock:
            if key not in self._normalized:
                self._normalized[key] = entry
                self._evict(self._normalized)
        return entry.take()

    # -- schedule level ------------------------------------------------------------

    def schedule_key(self, canonical_hash: str, scheduler: str, threads: int,
                     parameters: Optional[Any],
                     database_version: Optional[int] = None) -> Hashable:
        """Key for one scheduling outcome.

        ``database_version`` must be supplied for database-backed schedulers:
        tuning grows the database, and entries cached before a ``tune()``
        would otherwise shadow the better transfer-tuned schedules available
        afterwards.
        """
        return (canonical_hash, scheduler, threads,
                fingerprint(dict(parameters or {})), database_version)

    def lookup_schedule(self, key: Hashable) -> Optional[Tuple[ScheduleResult, float]]:
        with self._lock:
            entry = self._schedules.get(key)
            if entry is None:
                self.stats.schedule_misses += 1
                return None
            self._schedules.move_to_end(key)
            self.stats.schedule_hits += 1
            return entry.take()

    def store_schedule(self, key: Hashable, result: ScheduleResult,
                       runtime_s: float) -> None:
        entry = ScheduleEntry(_copy_result(result), runtime_s)
        with self._lock:
            self._schedules[key] = entry
            self._evict(self._schedules)

    # -- maintenance -----------------------------------------------------------------

    def _evict(self, store: "OrderedDict[Any, Any]") -> None:
        while len(store) > self.max_entries:
            store.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._normalized.clear()
            self._schedules.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._normalized) + len(self._schedules)

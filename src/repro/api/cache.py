"""Content-addressed normalization and schedule caching.

The cache has two levels, both keyed by content hashes
(:mod:`repro.api.hashing`) and safe to share across the threads of a
:meth:`repro.api.Session.schedule_batch` fan-out:

* **normalization level** — ``hash(program as written, pipeline identity,
  parameters) -> normalized program``.  Re-scheduling the same program
  skips fission + stride minimization; results from one pipeline (e.g. the
  ``"no-fission"`` ablation) are never served for another.
* **schedule level** — ``hash(canonical form) -> scheduled program``.
  Because a-priori normalization maps equivalent variants onto one canonical
  form, scheduling the B variant of a benchmark after the A variant (or GEMM
  in a second loop order) is served from the cache without re-running the
  scheduler at all.
* **response level** — ``request fingerprint -> pre-encoded response bytes``
  (:class:`ResponseEntry`).  The serving fast lane stores the final JSON a
  response encodes to, split around the per-request echo, and serves repeat
  requests without touching the session, the IR, or a JSON parser.

Storage is delegated to a pluggable :class:`~repro.api.backends.CacheBackend`
(:class:`~repro.api.backends.MemoryCacheBackend` by default; the SQLite
backend persists all levels across restarts).  Entries are bounded by an
LRU policy; cached programs are handed out as copy-on-write snapshots —
frozen loop trees shared structurally between the cache and every hit, with
receivers taking a private ``copy()`` only when they actually rewrite.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from ..ir.nodes import Program
from ..ir.serialization import program_from_dict, program_to_dict
from ..normalization.pipeline import (NormalizationOptions,
                                      NormalizationReport, normalize)
from ..observability import MetricsRegistry
from ..observability.tracing import span as trace_span
from ..passes.analysis import AnalysisManager
from ..passes.base import PassStats
from ..scheduler.base import ScheduleResult
from .backends import CacheBackend, MemoryCacheBackend
from .hashing import fingerprint, program_content_hash

#: Backend namespace of the normalization level.
NORMALIZED_NAMESPACE = "normalized"
#: Backend namespace of the schedule level.
SCHEDULE_NAMESPACE = "schedules"
#: Backend namespace of the response level (pre-encoded response bytes).
RESPONSE_NAMESPACE = "responses"


@dataclass
class CacheStats:
    """Hit/miss counters of the cache levels."""

    normalization_hits: int = 0
    normalization_misses: int = 0
    schedule_hits: int = 0
    schedule_misses: int = 0
    response_hits: int = 0
    response_misses: int = 0
    evictions: int = 0

    @property
    def normalization_requests(self) -> int:
        return self.normalization_hits + self.normalization_misses

    @property
    def schedule_requests(self) -> int:
        return self.schedule_hits + self.schedule_misses

    @property
    def response_requests(self) -> int:
        return self.response_hits + self.response_misses

    def to_dict(self) -> Dict[str, int]:
        return {
            "normalization_hits": self.normalization_hits,
            "normalization_misses": self.normalization_misses,
            "schedule_hits": self.schedule_hits,
            "schedule_misses": self.schedule_misses,
            "response_hits": self.response_hits,
            "response_misses": self.response_misses,
            "evictions": self.evictions,
        }


@dataclass
class NormalizedEntry:
    """One cached normalization outcome.

    ``program`` is owned by the cache; :meth:`take` hands out copy-on-write
    snapshots whose (frozen) loop tree is shared with the cached entry.
    """

    program: Program
    report: NormalizationReport
    input_hash: str
    canonical_hash: str
    hit: bool = False

    def take(self) -> "NormalizedEntry":
        return NormalizedEntry(self.program.snapshot(), self.report,
                               self.input_hash, self.canonical_hash, self.hit)


def _encode_normalized(entry: NormalizedEntry) -> Dict[str, Any]:
    return {
        "program": program_to_dict(entry.program),
        "report": entry.report.to_dict(),
        "input_hash": entry.input_hash,
        "canonical_hash": entry.canonical_hash,
    }


def _decode_normalized(payload: Dict[str, Any]) -> NormalizedEntry:
    return NormalizedEntry(
        program=program_from_dict(dict(payload["program"])),
        report=NormalizationReport.from_dict(payload["report"]),
        input_hash=payload["input_hash"],
        canonical_hash=payload["canonical_hash"],
    )


@dataclass
class ScheduleEntry:
    """One cached scheduling outcome (per scheduler/parameters/canonical form)."""

    result: ScheduleResult
    runtime_s: float

    def take(self) -> Tuple[ScheduleResult, float]:
        return self.result.share(), self.runtime_s


def _encode_schedule(entry: ScheduleEntry) -> Dict[str, Any]:
    return {"result": entry.result.to_dict(), "runtime_s": entry.runtime_s}


def _decode_schedule(payload: Dict[str, Any]) -> ScheduleEntry:
    return ScheduleEntry(result=ScheduleResult.from_dict(payload["result"]),
                         runtime_s=float(payload["runtime_s"]))


@dataclass
class ResponseEntry:
    """One cached fully-encoded schedule response (the serving fast lane).

    ``before``/``after`` are the JSON text of the response up to and from
    the per-request echo: ``before + json.dumps(request.to_dict()) + after``
    reproduces ``json.dumps(response.to_dict())`` byte for byte (minus the
    trace id, which the server splices per request).  Splitting around the
    echo lets one entry serve every request that coalesces onto the same
    fingerprint, whatever its priority, client, label, or trace context.
    """

    before: str
    after: str


def _encode_response(entry: ResponseEntry) -> str:
    # Raw codec: the persisted payload IS this text.  A newline can never
    # occur inside compact JSON (strings escape it as \n), so it is a safe
    # separator.
    return entry.before + "\n" + entry.after


def _decode_response(payload: str) -> ResponseEntry:
    before, _, after = payload.partition("\n")
    return ResponseEntry(before, after)


class NormalizationCache:
    """Two-level content-addressed cache shared by one (or more) sessions."""

    def __init__(self, max_entries: int = 1024,
                 backend: Optional[CacheBackend] = None,
                 metrics: Optional[MetricsRegistry] = None):
        # ``if backend is not None``, not ``or``: an empty backend is falsy
        # through ``__len__`` and must still win over the default.
        self.backend = backend if backend is not None else MemoryCacheBackend(max_entries)
        self.max_entries = getattr(self.backend, "max_entries", max_entries)
        self.backend.bind(NORMALIZED_NAMESPACE,
                          _encode_normalized, _decode_normalized)
        self.backend.bind(SCHEDULE_NAMESPACE, _encode_schedule, _decode_schedule)
        self.backend.bind(RESPONSE_NAMESPACE, _encode_response,
                          _decode_response, raw=True)
        self._stats = CacheStats()
        self._lock = threading.RLock()
        #: Long-lived memo of per-nest analyses, shared by every pipeline
        #: run this cache performs (repeat/batch traffic hits it).
        self.analysis = AnalysisManager()
        #: Aggregated per-pass timings/change counters of every run.
        self.pass_stats = PassStats()
        #: Instrument registry (a session that builds this cache passes its
        #: own, so cache and session telemetry land in one registry).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._metric_requests = self.metrics.counter(
            "repro_cache_requests_total",
            "Content-addressed cache lookups by level and outcome.",
            ("level", "outcome"))
        self._metric_pass_runs = self.metrics.counter(
            "repro_pass_runs_total",
            "Normalization pass applications.", ("pass",))
        self._metric_pass_changed = self.metrics.counter(
            "repro_pass_changed_total",
            "Normalization pass applications that changed the program.",
            ("pass",))
        self._metric_pass_wall = self.metrics.counter(
            "repro_pass_wall_seconds_total",
            "Total wall time spent inside each normalization pass.",
            ("pass",))

    @property
    def stats(self) -> CacheStats:
        """A snapshot of the counters; evictions come from the backend (the
        single source of truth, also visible to other caches sharing it)."""
        with self._lock:
            return replace(self._stats, evictions=self.backend.stats.evictions)

    # -- normalization level -----------------------------------------------------

    def normalized(self, program: Program,
                   options: Optional[NormalizationOptions] = None) -> NormalizedEntry:
        """Normalize ``program`` through the cache.

        Returns a :class:`NormalizedEntry` whose ``program`` is a fresh copy;
        ``hit`` records whether fission/stride minimization were skipped.
        """
        options = options or NormalizationOptions()
        # The *resolved pipeline identity* (name + ordered pass structure) is
        # part of the key, so results from one pipeline (e.g. "no-fission")
        # can never be served for another (e.g. the full "a-priori") — in
        # every backend, since backends store these key strings verbatim.
        pipeline = options.to_pipeline()
        key = program_content_hash(program, extra={
            "pipeline": pipeline.identity(),
            "parameters": fingerprint(dict(options.parameters or {})),
        })
        with trace_span("cache.lookup", level="normalization") as lookup:
            entry = self.backend.get(NORMALIZED_NAMESPACE, key)
            lookup.set_attribute("outcome",
                                 "hit" if entry is not None else "miss")
        with self._lock:
            if entry is not None:
                self._stats.normalization_hits += 1
                self._metric_requests.labels("normalization", "hit").inc()
                served = entry.take()
                served.hit = True
                return served
            self._stats.normalization_misses += 1
        self._metric_requests.labels("normalization", "miss").inc()

        with trace_span("normalize.pipeline",
                        pipeline=getattr(pipeline, "name", "pipeline")):
            normalized, report = normalize(program, options, self.analysis,
                                           pipeline=pipeline)
        self.pass_stats.add(report.passes)
        for pass_result in report.passes:
            self._metric_pass_runs.labels(pass_result.pass_name).inc()
            if pass_result.changed:
                self._metric_pass_changed.labels(pass_result.pass_name).inc()
            self._metric_pass_wall.labels(pass_result.pass_name).inc(
                pass_result.wall_time_s)
        canonical_hash = program_content_hash(normalized)
        entry = NormalizedEntry(normalized, report, key, canonical_hash)
        self.backend.put(NORMALIZED_NAMESPACE, key, entry)
        return entry.take()

    # -- schedule level ------------------------------------------------------------

    def schedule_key(self, canonical_hash: str, scheduler: str, threads: int,
                     parameters: Optional[Any],
                     database_version: Optional[int] = None) -> str:
        """Key for one scheduling outcome.

        ``database_version`` must be supplied for database-backed schedulers:
        tuning grows the database, and entries cached before a ``tune()``
        would otherwise shadow the better transfer-tuned schedules available
        afterwards.  Keys are plain strings so that every backend (including
        on-disk ones) can store them verbatim.
        """
        return "|".join((canonical_hash, scheduler, str(threads),
                         fingerprint(dict(parameters or {})),
                         str(database_version)))

    def lookup_schedule(self, key: str) -> Optional[Tuple[ScheduleResult, float]]:
        with trace_span("cache.lookup", level="schedule") as lookup:
            entry = self.backend.get(SCHEDULE_NAMESPACE, key)
            lookup.set_attribute("outcome",
                                 "hit" if entry is not None else "miss")
        with self._lock:
            if entry is None:
                self._stats.schedule_misses += 1
                outcome = "miss"
            else:
                self._stats.schedule_hits += 1
                outcome = "hit"
        self._metric_requests.labels("schedule", outcome).inc()
        return entry.take() if entry is not None else None

    def store_schedule(self, key: str, result: ScheduleResult,
                       runtime_s: float) -> None:
        entry = ScheduleEntry(result.copy(), runtime_s)
        self.backend.put(SCHEDULE_NAMESPACE, key, entry)

    # -- response level ------------------------------------------------------------

    def lookup_response(self, key: str) -> Optional[ResponseEntry]:
        """Fetch the pre-encoded response bytes of one request fingerprint.

        Entries are immutable text, so hits are served without copying,
        decoding, or touching the IR — this is the serving fast lane.
        """
        entry = self.backend.get(RESPONSE_NAMESPACE, key)
        with self._lock:
            if entry is None:
                self._stats.response_misses += 1
                outcome = "miss"
            else:
                self._stats.response_hits += 1
                outcome = "hit"
        self._metric_requests.labels("response", outcome).inc()
        return entry

    def store_response(self, key: str, entry: ResponseEntry) -> None:
        self.backend.put(RESPONSE_NAMESPACE, key, entry)

    # -- maintenance -----------------------------------------------------------------

    def clear(self) -> None:
        self.backend.clear()

    def close(self) -> None:
        self.backend.close()

    def __len__(self) -> int:
        return len(self.backend)

"""Typed request/response objects of the :class:`repro.api.Session` facade.

Consumers used to pass ad-hoc ``(program, parameters)`` tuples around and
unpack ``(program, report)`` results; the facade instead speaks small
dataclasses that serialize to plain dictionaries (so batch jobs can be
persisted, shipped to workers, and replayed).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Mapping, Optional, Union

from ..ir.nodes import Program
from ..ir.serialization import program_from_dict, program_to_dict
from ..normalization.pipeline import NormalizationReport
from ..scheduler.base import ScheduleResult

#: What ``Session.load`` accepts: an IR program, C-like source text, or a
#: workload-registry name (optionally suffixed ``:a`` / ``:b`` / ``:npbench``).
ProgramLike = Union[Program, str]

#: The priority scale of :attr:`ScheduleRequest.priority`: 0 is the most
#: urgent, 9 the least.  A serving queue drains strictly in this order.
HIGHEST_PRIORITY = 0
LOWEST_PRIORITY = 9
DEFAULT_PRIORITY = 5


@dataclass
class ScheduleRequest:
    """One scheduling job.

    ``program`` may be anything :meth:`repro.api.Session.load` accepts.
    ``scheduler`` / ``threads`` / ``normalize`` default to the session's
    configuration (``normalize=None`` means "whatever the scheduler's
    registry metadata says").  ``pipeline`` selects a registered
    normalization pipeline by name for this request (``"a-priori"``,
    ``"no-fission"``, ...; ``None`` uses the session's configuration).

    ``priority`` and ``client`` only matter to a serving layer: priorities
    run 0 (most urgent) through 9 (least, the default is
    :data:`DEFAULT_PRIORITY`), and a serving queue drains strictly in
    priority order (FIFO within one priority).  ``client`` is an opaque
    caller identity used for per-client admission control; neither field
    affects the scheduling outcome, so they are excluded from coalescing
    fingerprints and cache keys.
    """

    program: ProgramLike
    parameters: Optional[Mapping[str, int]] = None
    scheduler: Optional[str] = None
    threads: Optional[int] = None
    label: Optional[str] = None
    normalize: Optional[bool] = None
    tune: bool = False
    pipeline: Optional[str] = None
    priority: int = DEFAULT_PRIORITY
    client: Optional[str] = None
    #: Relative deadline in seconds from submission, consumed by the
    #: serving layer's ``edf`` queue policy (earliest deadline drains
    #: first; ``None`` sorts after every deadlined request, a value <= 0 is
    #: already-late and sorts most urgent).  Like ``priority``/``client``
    #: it never affects the scheduling outcome and is excluded from
    #: coalescing fingerprints and cache keys.
    deadline_s: Optional[float] = None
    #: Propagated trace context (``{"trace_id", "span_id"}``), set by a
    #: serving layer so worker-side spans rejoin the coordinator's trace.
    #: Like ``priority``/``client`` it never affects the scheduling outcome
    #: and is excluded from coalescing fingerprints and cache keys.
    trace: Optional[Dict[str, str]] = None

    def to_dict(self) -> Dict[str, Any]:
        program = self.program
        payload = {
            "program": (program_to_dict(program) if isinstance(program, Program)
                        else program),
            "parameters": (dict(self.parameters) if self.parameters is not None
                           else None),
            "scheduler": self.scheduler,
            "threads": self.threads,
            "label": self.label,
            "normalize": self.normalize,
            "tune": self.tune,
            "pipeline": self.pipeline,
            "priority": self.priority,
            "client": self.client,
        }
        # Only emitted when set, keeping deadline-free payloads (and any
        # digests derived from them) byte-identical to earlier versions.
        if self.deadline_s is not None:
            payload["deadline_s"] = self.deadline_s
        if self.trace is not None:
            payload["trace"] = dict(self.trace)
        return payload

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ScheduleRequest":
        program = data["program"]
        if isinstance(program, Mapping):
            program = program_from_dict(dict(program))
        # An explicit JSON null priority means "the default", not int(None).
        priority = data.get("priority")
        return ScheduleRequest(
            program=program,
            parameters=data.get("parameters"),
            scheduler=data.get("scheduler"),
            threads=data.get("threads"),
            label=data.get("label"),
            normalize=data.get("normalize"),
            tune=bool(data.get("tune", False)),
            pipeline=data.get("pipeline"),
            priority=DEFAULT_PRIORITY if priority is None else int(priority),
            client=data.get("client"),
            deadline_s=(float(data["deadline_s"])
                        if data.get("deadline_s") is not None else None),
            trace=dict(data["trace"]) if data.get("trace") else None,
        )


@dataclass
class NormalizeResponse:
    """Outcome of running a program through the normalization cache."""

    program: Program
    report: NormalizationReport
    input_hash: str
    canonical_hash: str
    cache_hit: bool

    def summary(self) -> str:
        origin = "cache" if self.cache_hit else "pipeline"
        return f"{self.report.summary()} [{origin}, {self.canonical_hash[:12]}]"


@dataclass
class ScheduleResponse:
    """Outcome of one scheduling job.

    ``program`` is the scheduled program; ``result`` carries the per-nest
    details. ``from_cache`` is True when the whole schedule was served from
    the content-addressed cache (a normalized-equivalent variant was already
    scheduled), ``normalization_cache_hit`` when only the normalization was.
    """

    request: ScheduleRequest
    scheduler: str
    program: Program
    result: ScheduleResult
    runtime_s: float
    normalized: bool
    input_hash: Optional[str] = None
    canonical_hash: Optional[str] = None
    from_cache: bool = False
    normalization_cache_hit: bool = False
    #: Trace id of the request's span tree, when tracing was active;
    #: cross-references the access log, latency exemplars, and /v1/traces.
    trace_id: Optional[str] = None

    def summary(self) -> str:
        cached = " [cached]" if self.from_cache else ""
        return f"{self.result.summary()} est={self.runtime_s:.3e}s{cached}"

    def to_dict(self) -> Dict[str, Any]:
        data = self.result.to_dict()
        if self.program is not self.result.program:
            # Normally the same object (every construction path shares it);
            # avoid serializing the full IR twice on the serving hot path.
            data["program"] = program_to_dict(self.program)
        data.update({
            "request": self.request.to_dict(),
            "scheduler": self.scheduler,
            "runtime_s": self.runtime_s,
            "normalized": self.normalized,
            "input_hash": self.input_hash,
            "canonical_hash": self.canonical_hash,
            "from_cache": self.from_cache,
            "normalization_cache_hit": self.normalization_cache_hit,
        })
        if self.trace_id is not None:
            data["trace_id"] = self.trace_id
        return data

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ScheduleResponse":
        result = ScheduleResult.from_dict(data)
        return ScheduleResponse(
            request=ScheduleRequest.from_dict(data["request"]),
            scheduler=data["scheduler"],
            program=result.program,
            result=result,
            runtime_s=float(data["runtime_s"]),
            normalized=bool(data.get("normalized", False)),
            input_hash=data.get("input_hash"),
            canonical_hash=data.get("canonical_hash"),
            from_cache=bool(data.get("from_cache", False)),
            normalization_cache_hit=bool(data.get("normalization_cache_hit", False)),
            trace_id=data.get("trace_id"),
        )


class EncodedScheduleResponse:
    """A :class:`ScheduleResponse` carried as its JSON text.

    The serving fast lane (and the worker-pool coordinator) mostly shuttle
    response bytes onward — the HTTP layer replies with exactly these bytes
    — so parsing JSON or decoding the IR program in between would be pure
    overhead on the warm path.  This wrapper keeps the pre-encoded JSON
    verbatim (:meth:`to_json`), parses it only when :meth:`to_dict` is
    called, and defers the full :meth:`ScheduleResponse.from_dict` until a
    response *field* is actually accessed.
    """

    __slots__ = ("_json", "_payload", "_decoded")

    def __init__(self, payload_json: str):
        self._json = payload_json
        self._payload: Optional[Dict[str, Any]] = None
        self._decoded: Optional[ScheduleResponse] = None

    def to_json(self) -> str:
        """The response as JSON text, exactly as it was encoded."""
        return self._json

    def to_dict(self) -> Dict[str, Any]:
        if self._payload is None:
            self._payload = json.loads(self._json)
        return self._payload

    def _materialize(self) -> ScheduleResponse:
        if self._decoded is None:
            self._decoded = ScheduleResponse.from_dict(self.to_dict())
        return self._decoded

    def __getattr__(self, name: str) -> Any:
        # Only reached for names not in __slots__, i.e. ScheduleResponse
        # fields (request, program, result, runtime_s, from_cache, ...).
        return getattr(self._materialize(), name)

    def __repr__(self) -> str:
        decoded = "decoded" if self._decoded is not None else "deferred"
        return f"{type(self).__name__}({decoded})"


@dataclass
class ExecuteResponse:
    """Outcome of interpreting a program on concrete inputs."""

    program: Program
    parameters: Dict[str, int]
    outputs: Dict[str, Any]

    def output(self, name: str) -> Any:
        return self.outputs[name]


@dataclass
class SessionReport:
    """A snapshot of everything a session did (returned by ``report()``).

    ``cache_backend`` names the storage backend of the normalization cache;
    ``cache_memory_hits`` / ``cache_disk_hits`` split backend hits between
    the in-process layer and persistent storage (disk hits only occur on
    persistent backends), and ``cache_busy_retries`` counts writes that
    found the store locked by another process and had to retry — the
    contention signal of a cache file shared across worker processes.  ``coalesced_requests`` counts requests a serving
    layer merged into an identical in-flight request instead of scheduling
    them again, and ``database_shards`` lists per-shard entry counts when
    the tuning database is sharded (empty for the unsharded database).

    ``normalization_passes`` aggregates the instrumented pass results of
    every pipeline run the session's cache performed: per pass name, the
    number of runs, how many changed the program, total wall time, and the
    summed IR-size delta.  ``analysis_hits`` / ``analysis_misses`` count the
    memoized per-nest analyses served and computed by the cache's
    :class:`~repro.passes.analysis.AnalysisManager`.
    """

    schedule_calls: int = 0
    tune_calls: int = 0
    batch_calls: int = 0
    execute_calls: int = 0
    normalization_hits: int = 0
    normalization_misses: int = 0
    schedule_cache_hits: int = 0
    schedule_cache_misses: int = 0
    cache_evictions: int = 0
    database_entries: int = 0
    schedulers: List[str] = field(default_factory=list)
    cache_backend: str = "memory"
    cache_memory_hits: int = 0
    cache_disk_hits: int = 0
    cache_writes: int = 0
    cache_busy_retries: int = 0
    coalesced_requests: int = 0
    #: Response-level (fast-lane) cache traffic: hits were served as
    #: pre-encoded bytes without touching the session or the IR.
    response_cache_hits: int = 0
    response_cache_misses: int = 0
    database_shards: List[int] = field(default_factory=list)
    normalization_passes: Dict[str, Dict[str, float]] = field(default_factory=dict)
    analysis_hits: int = 0
    analysis_misses: int = 0
    #: Online feedback: executed-schedule timings folded back into the
    #: tuning database (``applied`` updated an existing entry, ``added``
    #: created a measurement-born one, ``skipped`` found no nest to credit).
    feedback_applied: int = 0
    feedback_added: int = 0
    feedback_skipped: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schedule_calls": self.schedule_calls,
            "tune_calls": self.tune_calls,
            "batch_calls": self.batch_calls,
            "execute_calls": self.execute_calls,
            "normalization_hits": self.normalization_hits,
            "normalization_misses": self.normalization_misses,
            "schedule_cache_hits": self.schedule_cache_hits,
            "schedule_cache_misses": self.schedule_cache_misses,
            "cache_evictions": self.cache_evictions,
            "database_entries": self.database_entries,
            "schedulers": list(self.schedulers),
            "cache_backend": self.cache_backend,
            "cache_memory_hits": self.cache_memory_hits,
            "cache_disk_hits": self.cache_disk_hits,
            "cache_writes": self.cache_writes,
            "cache_busy_retries": self.cache_busy_retries,
            "coalesced_requests": self.coalesced_requests,
            "response_cache_hits": self.response_cache_hits,
            "response_cache_misses": self.response_cache_misses,
            "database_shards": list(self.database_shards),
            "normalization_passes": {name: dict(entry) for name, entry
                                     in self.normalization_passes.items()},
            "analysis_hits": self.analysis_hits,
            "analysis_misses": self.analysis_misses,
            "feedback_applied": self.feedback_applied,
            "feedback_added": self.feedback_added,
            "feedback_skipped": self.feedback_skipped,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "SessionReport":
        known = {f.name for f in fields(SessionReport)}
        return SessionReport(**{key: value for key, value in data.items()
                                if key in known})

    def summary(self) -> str:
        extras = ""
        if self.cache_backend != "memory":
            extras += (f", {self.cache_backend} backend "
                       f"({self.cache_memory_hits} memory / "
                       f"{self.cache_disk_hits} disk hits)")
        if self.coalesced_requests:
            extras += f", {self.coalesced_requests} coalesced requests"
        if self.database_shards:
            extras += f", shards {self.database_shards}"
        return (f"{self.schedule_calls} schedules ({self.schedule_cache_hits} served "
                f"from cache), {self.tune_calls} tunes, "
                f"{self.normalization_hits}/{self.normalization_hits + self.normalization_misses} "
                f"normalization cache hits, {self.database_entries} database entries"
                + extras)

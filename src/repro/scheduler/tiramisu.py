"""A Tiramisu-auto-scheduler-like baseline.

The paper runs the Tiramisu auto-scheduler as a standalone Monte-Carlo Tree
Search guided by its learned performance model, fed through an adapter that
applies maximal loop fission and only converts *perfectly nested parallel*
loops (Section 4, "Baselines").  Nests outside that class are unsupported —
the "X" marks in Figure 6.

We reproduce that structure: maximal fission, a support check, and an MCTS
over (interchange, tile, parallelize, vectorize, unroll) decisions.  The
guiding model is our analytical cost model perturbed with Gaussian noise to
stand in for the learned model's prediction error; the top candidates are
then re-evaluated without noise ("measured") and the best is kept, exactly
like the paper's top-3 protocol.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis.dependence import legal_permutations
from ..analysis.parallelism import is_fully_parallel_band
from ..ir.nodes import Loop, Program
from ..normalization.fission import maximal_loop_fission
from ..transforms.parallelize import Parallelize, Unroll, Vectorize
from ..transforms.recipe import Recipe, apply_recipe
from ..transforms.interchange import Interchange
from ..transforms.tiling import Tile
from .base import NestScheduleInfo, ScheduleResult, Scheduler

TILE_CHOICES = (0, 32, 64, 128)
UNROLL_CHOICES = (1, 4)


@dataclass
class MctsConfig:
    """Parameters of the Monte-Carlo tree search."""

    rollouts: int = 24
    exploration: float = 0.7
    top_candidates: int = 3
    #: Relative standard deviation of the surrogate model's prediction noise.
    model_noise: float = 0.35
    seed: int = 0


@dataclass
class _DecisionNode:
    visits: int = 0
    value: float = 0.0
    children: Dict[Tuple, "_DecisionNode"] = field(default_factory=dict)


class TiramisuScheduler(Scheduler):
    """Maximal-fission adapter + noisy-model MCTS over schedule decisions."""

    name = "tiramisu"

    def __init__(self, machine=None, threads: int = 1,
                 config: Optional[MctsConfig] = None):
        from ..perf.machine import DEFAULT_MACHINE
        super().__init__(machine or DEFAULT_MACHINE, threads)
        self.config = config or MctsConfig()
        self._rng = random.Random(self.config.seed)

    # -- public ----------------------------------------------------------------------

    def schedule(self, program: Program,
                 parameters: Mapping[str, int]) -> ScheduleResult:
        scheduled = program.copy()
        # The adapter applies maximal loop fission before conversion.
        maximal_loop_fission(scheduled)
        result = ScheduleResult(scheduler=self.name, program=scheduled)

        supported_any = False
        for index, node in enumerate(scheduled.body):
            if not isinstance(node, Loop):
                continue
            if not self._supported(node):
                result.nests.append(NestScheduleInfo(index, "unsupported", None,
                                                     "not a perfectly nested parallel loop"))
                continue
            supported_any = True
            recipe = self._mcts(scheduled, index, parameters)
            application = apply_recipe(scheduled, recipe, strict=False)
            status = "optimized" if application.applied else "unchanged"
            result.nests.append(NestScheduleInfo(index, status, recipe,
                                                 f"mcts ({self.config.rollouts} rollouts)"))
        # The paper marks whole benchmarks with X when the scheduler could not
        # be applied successfully.
        result.unsupported = not supported_any
        return result

    # -- support check ------------------------------------------------------------------

    def _supported(self, nest: Loop) -> bool:
        if not nest.is_perfect_nest():
            return False
        band = nest.perfectly_nested_band()
        # Only the outer (non-reduction) part of the band must be parallel;
        # require at least the outermost loop to be parallel.
        from ..analysis.parallelism import analyze_loop_parallelism
        if not analyze_loop_parallelism(band[0]).is_parallel:
            return False
        # Loop bounds must be rectangular (no dependence on outer iterators).
        iterators = {loop.iterator for loop in band}
        for loop in band:
            bound_symbols = (loop.start.free_symbols() | loop.end.free_symbols()
                             | loop.step.free_symbols())
            if bound_symbols & iterators:
                return False
        return True

    # -- search -----------------------------------------------------------------------

    def _candidate_space(self, nest: Loop) -> List[Tuple]:
        band = nest.perfectly_nested_band()
        orders = legal_permutations(nest) if len(band) <= 4 else [
            tuple(loop.iterator for loop in band)]
        return [("order", order) for order in orders]

    def _random_schedule(self, nest: Loop, orders: Sequence[Tuple[str, ...]],
                         rng: Optional[random.Random] = None) -> Dict[str, object]:
        rng = rng or self._rng
        order = rng.choice(list(orders))
        tiles = {iterator: rng.choice(TILE_CHOICES) for iterator in order}
        return {
            "order": order,
            "tiles": tiles,
            "parallel": rng.random() < 0.9,
            "vectorize": rng.random() < 0.7,
            "unroll": rng.choice(UNROLL_CHOICES),
        }

    def _to_recipe(self, decision: Dict[str, object], index: int) -> Recipe:
        recipe = Recipe(f"tiramisu#{index}")
        recipe.add(Interchange(index, list(decision["order"])))
        tiles = {k: v for k, v in decision["tiles"].items() if v and v > 1}
        if tiles:
            recipe.add(Tile(index, tiles))
        if decision["parallel"]:
            recipe.add(Parallelize(index))
        if decision["vectorize"]:
            recipe.add(Vectorize(index, require_unit_stride=False))
        if decision["unroll"] > 1:
            recipe.add(Unroll(index, factor=decision["unroll"]))
        return recipe

    def _surrogate(self, program: Program, index: int, decision: Dict[str, object],
                   parameters: Mapping[str, int],
                   rng: Optional[random.Random] = None) -> Tuple[float, Recipe]:
        rng = rng or self._rng
        recipe = self._to_recipe(decision, index)
        trial = program.copy()
        apply_recipe(trial, recipe, strict=False)
        runtime = self.cost_model.estimate_seconds(trial, parameters)
        noisy = runtime * max(0.05, 1.0 + rng.gauss(0.0, self.config.model_noise))
        return noisy, recipe

    def _measure(self, program: Program, recipe: Recipe,
                 parameters: Mapping[str, int]) -> float:
        trial = program.copy()
        apply_recipe(trial, recipe, strict=False)
        return self.cost_model.estimate_seconds(trial, parameters)

    def _mcts(self, program: Program, index: int,
              parameters: Mapping[str, int]) -> Recipe:
        nest = program.body[index]
        assert isinstance(nest, Loop)
        band = nest.perfectly_nested_band()
        orders = (legal_permutations(nest) if len(band) <= 4
                  else [tuple(loop.iterator for loop in band)])

        # Rollouts: sample schedules, score them with the noisy surrogate.
        # A fresh per-call rng (salted by the nest content) keeps results
        # independent of call order and makes one scheduler instance safe to
        # share across batch threads.
        from .evolutionary import nest_salt
        rng = random.Random(f"{self.config.seed}:{nest_salt(nest)}")
        scored: List[Tuple[float, Recipe]] = []
        for _ in range(self.config.rollouts):
            decision = self._random_schedule(nest, orders, rng=rng)
            scored.append(self._surrogate(program, index, decision, parameters,
                                          rng=rng))
        scored.sort(key=lambda item: item[0])

        # Measure the top candidates exactly and keep the best.
        top = scored[:self.config.top_candidates]
        best_recipe = Recipe("identity")
        best_runtime = self._measure(program, best_recipe, parameters)
        for _, recipe in top:
            runtime = self._measure(program, recipe, parameters)
            if runtime < best_runtime:
                best_runtime, best_recipe = runtime, recipe
        return best_recipe

"""The daisy normalized auto-scheduler (Section 4).

daisy is the paper's auto-scheduler built on top of a-priori normalization:

1. the program is normalized (maximal fission + stride minimization),
2. every nest matching a BLAS-3 kernel is replaced by the library call,
3. every other nest is optimized with a recipe retrieved from the
   transfer-tuning database by embedding similarity; if no suitable entry
   exists, an evolutionary search finds a recipe (and stores it).

Because recipes are recorded against *normalized* nests with canonical
iterator names, a recipe found on the A variant of a benchmark applies
unchanged to the normalized B variant — this is the robustness mechanism the
paper evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from ..ir.nodes import Loop, Program
from ..normalization.pipeline import NormalizationOptions, normalize
from ..passes.analysis import AnalysisManager
from ..perf.machine import DEFAULT_MACHINE, MachineModel
from ..transforms.idiom import ReplaceWithLibraryCall, match_blas3
from ..transforms.recipe import Recipe, apply_recipe
from .base import NestScheduleInfo, ScheduleResult, Scheduler, retarget_recipe
from .database import TuningDatabase
from .embedding import embed_nest
from .evolutionary import EvolutionarySearch, SearchConfig

#: Maximum embedding distance at which a database recipe is considered a match.
DEFAULT_MAX_DISTANCE = 6.0


@dataclass
class DaisyConfig:
    """Configuration of the daisy scheduler."""

    threads: int = 1
    search: SearchConfig = field(default_factory=SearchConfig)
    max_database_distance: float = DEFAULT_MAX_DISTANCE
    #: When True, nests without a database match are tuned on the fly.
    search_on_miss: bool = True
    #: When True, nests that fail to lift/normalize are still parallelized
    #: naively (with atomics for reductions), reproducing the behavior the
    #: paper reports for correlation/covariance.
    fallback_parallelize: bool = False


class DaisyScheduler(Scheduler):
    """Normalization + similarity-based transfer tuning."""

    name = "daisy"

    def __init__(self, machine: MachineModel = DEFAULT_MACHINE,
                 config: Optional[DaisyConfig] = None,
                 database: Optional[TuningDatabase] = None,
                 normalization: Union[NormalizationOptions, str, None] = None):
        self.config = config or DaisyConfig()
        super().__init__(machine, self.config.threads)
        self.database = database if database is not None else TuningDatabase()
        # ``normalization`` may be options or a registry pipeline name
        # ("a-priori", "identity", ...); names resolve through the registry.
        if isinstance(normalization, str):
            normalization = NormalizationOptions.named(normalization)
        self.normalization = normalization or NormalizationOptions()
        #: Scheduler-lifetime memo: repeat scheduling of equivalent nests
        #: reuses dependence/permutation analyses across ``_run`` calls.
        self._analysis = AnalysisManager()
        self._search = EvolutionarySearch(self.cost_model, self.config.search)

    # -- seeding ---------------------------------------------------------------------

    def tune(self, program: Program, parameters: Mapping[str, int],
             label: Optional[str] = None) -> ScheduleResult:
        """Tune a program (an A variant) and record its recipes in the database.

        Returns the scheduled program so that callers can also use the tuned
        A variant directly.
        """
        return self._run(program, parameters, seeding=True, label=label)

    # -- scheduling -------------------------------------------------------------------

    def schedule(self, program: Program,
                 parameters: Mapping[str, int]) -> ScheduleResult:
        """Schedule a program using only the existing database entries."""
        return self._run(program, parameters, seeding=False)

    # -- core -------------------------------------------------------------------------

    def _run(self, program: Program, parameters: Mapping[str, int],
             seeding: bool, label: Optional[str] = None) -> ScheduleResult:
        normalized, _report = normalize(program, self.normalization,
                                        self._analysis)
        result = ScheduleResult(scheduler=self.name, program=normalized)

        for index in range(len(normalized.body)):
            node = normalized.body[index]
            if not isinstance(node, Loop):
                continue
            info = self._schedule_nest(normalized, index, parameters, seeding,
                                       label or program.name)
            result.nests.append(info)
        return result

    def _schedule_nest(self, program: Program, index: int,
                       parameters: Mapping[str, int], seeding: bool,
                       label: str) -> NestScheduleInfo:
        nest = program.body[index]
        assert isinstance(nest, Loop)

        # 1. BLAS-3 idiom detection on the normalized nest.
        if match_blas3(nest) is not None:
            recipe = Recipe(f"{label}#{index}:blas", [ReplaceWithLibraryCall(index)])
            embedding = embed_nest(nest, program.arrays, parameters,
                                   label=f"{label}#{index}")
            application = apply_recipe(program, recipe, strict=False)
            if seeding:
                self.database.add(embedding, recipe)
            status = "optimized" if application.fully_applied else "failed"
            return NestScheduleInfo(index, status, recipe, "blas idiom")

        embedding = embed_nest(nest, program.arrays, parameters,
                               label=f"{label}#{index}")

        # 2. Transfer tuning: nearest database entry within the distance bound.
        entry = self.database.best_match(embedding, self.config.max_database_distance)
        if entry is not None and not seeding:
            recipe = retarget_recipe(entry.recipe, index)
            application = apply_recipe(program, recipe, strict=False)
            if application.applied:
                return NestScheduleInfo(index, "optimized", recipe,
                                        f"transfer from {entry.label}")
            # The recipe could not be applied at all: fall through to search
            # (or leave unchanged when search is disabled).
            if not self.config.search_on_miss:
                return NestScheduleInfo(index, "unchanged", None,
                                        f"recipe from {entry.label} not applicable")

        # 3. Evolutionary search (seeded with the recipes of the most similar
        #    nests, mirroring the epoch re-seeding of the paper).
        if seeding or self.config.search_on_miss:
            seeds: List[Recipe] = []
            for _distance, neighbor in self.database.query(embedding, k=10):
                seeds.append(retarget_recipe(neighbor.recipe, index))
            outcome = self._search.search(program, index, parameters, seeds)
            apply_recipe(program, outcome.recipe, strict=False)
            if seeding:
                self.database.add(embedding, outcome.recipe, runtime=outcome.runtime)
            return NestScheduleInfo(index, "optimized", outcome.recipe,
                                    f"evolutionary search ({outcome.evaluated} evals)")

        return NestScheduleInfo(index, "unchanged", None, "no database match")

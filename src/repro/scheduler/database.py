"""Transfer-tuning database.

The database stores pairs of (performance embedding, optimization recipe) for
normalized loop nests.  The daisy scheduler seeds it from the normalized A
variants of the benchmarks and queries it when scheduling new programs
(Section 4, "Seeding a Scheduling Database").
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..transforms.recipe import Recipe
from .embedding import EMBEDDING_SIZE, PerformanceEmbedding, pairwise_distance


@dataclass
class DatabaseEntry:
    """One tuned loop nest: its embedding, its recipe, and provenance."""

    embedding: Tuple[float, ...]
    recipe: Recipe
    label: str = ""
    runtime: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "embedding": list(self.embedding),
            "recipe": self.recipe.to_dict(),
            "label": self.label,
            "runtime": self.runtime,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "DatabaseEntry":
        return DatabaseEntry(
            embedding=tuple(float(x) for x in data["embedding"]),
            recipe=Recipe.from_dict(data["recipe"]),
            label=str(data.get("label", "")),
            runtime=data.get("runtime"),
        )


class TuningDatabase:
    """A collection of tuned loop nests queried by embedding similarity."""

    def __init__(self, entries: Optional[List[DatabaseEntry]] = None):
        self.entries: List[DatabaseEntry] = list(entries or [])

    def __len__(self) -> int:
        return len(self.entries)

    def add(self, embedding: PerformanceEmbedding, recipe: Recipe,
            runtime: Optional[float] = None) -> DatabaseEntry:
        """Insert a tuned nest into the database."""
        if len(embedding.vector) != EMBEDDING_SIZE:
            raise ValueError(
                f"embedding has {len(embedding.vector)} features, expected {EMBEDDING_SIZE}")
        entry = DatabaseEntry(embedding=tuple(embedding.vector), recipe=recipe,
                              label=embedding.label, runtime=runtime)
        self.entries.append(entry)
        return entry

    def query(self, embedding: PerformanceEmbedding,
              k: int = 1) -> List[Tuple[float, DatabaseEntry]]:
        """Return the ``k`` nearest entries as ``(distance, entry)`` pairs."""
        scored = [(pairwise_distance(embedding.vector, entry.embedding), entry)
                  for entry in self.entries]
        scored.sort(key=lambda pair: pair[0])
        return scored[:k]

    def best_match(self, embedding: PerformanceEmbedding,
                   max_distance: Optional[float] = None
                   ) -> Optional[DatabaseEntry]:
        """The nearest entry, or None if the database is empty or too far."""
        results = self.query(embedding, k=1)
        if not results:
            return None
        distance, entry = results[0]
        if max_distance is not None and distance > max_distance:
            return None
        return entry

    # -- persistence -----------------------------------------------------------

    def to_json(self, indent: int = 2) -> str:
        return json.dumps([entry.to_dict() for entry in self.entries], indent=indent)

    @staticmethod
    def from_json(text: str) -> "TuningDatabase":
        return TuningDatabase([DatabaseEntry.from_dict(item) for item in json.loads(text)])

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @staticmethod
    def load(path: str) -> "TuningDatabase":
        with open(path, "r", encoding="utf-8") as handle:
            return TuningDatabase.from_json(handle.read())

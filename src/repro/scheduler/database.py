"""Transfer-tuning database.

The database stores pairs of (performance embedding, optimization recipe) for
normalized loop nests.  The daisy scheduler seeds it from the normalized A
variants of the benchmarks and queries it when scheduling new programs
(Section 4, "Seeding a Scheduling Database").

Entries additionally accumulate **online feedback**: measured runtimes of
schedules that actually executed (:meth:`record_measurement`).  Queries
re-rank by ``distance * feedback_bias`` — entries whose executed schedules
beat their cost-model prediction rank closer, entries that disappointed rank
farther — which closes the measurement-to-policy loop the cost model alone
cannot (*The Potential of Synergistic Static, Dynamic and Speculative Loop
Nest Optimizations*).  Feedback-free databases rank exactly as before.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..transforms.recipe import Recipe
from .base import retarget_recipe
from .embedding import (EMBEDDING_SIZE, PerformanceEmbedding, feedback_bias,
                        pairwise_distance)

_RETARGET_SUFFIX = re.compile(r"(?:@\d+)+$")


def recipe_base_name(name: str) -> str:
    """Strip the ``@<nest_index>`` suffixes :func:`retarget_recipe` appends."""
    return _RETARGET_SUFFIX.sub("", name) or name


def recipe_identity(recipe: Recipe) -> str:
    """Retarget-insensitive identity of a recipe.

    Recipes stored in the database are applied to other programs via
    :func:`~repro.scheduler.base.retarget_recipe`, which rewrites the
    ``nest_index`` parameters and appends ``@<index>`` to the name; this
    identity normalizes both back, so a recipe extracted from a scheduled
    response matches the database entry it was transferred from.
    """
    canonical = retarget_recipe(recipe, 0, name=recipe_base_name(recipe.name))
    return json.dumps(canonical.to_dict(), sort_keys=True)


@dataclass
class DatabaseEntry:
    """One tuned loop nest: its embedding, its recipe, and provenance."""

    embedding: Tuple[float, ...]
    recipe: Recipe
    label: str = ""
    runtime: Optional[float] = None
    #: Online feedback: mean measured runtime of executed schedules credited
    #: to this entry, and how many measurements back it.
    measured_runtime: Optional[float] = None
    measurements: int = 0

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "embedding": list(self.embedding),
            "recipe": self.recipe.to_dict(),
            "label": self.label,
            "runtime": self.runtime,
        }
        # Only emitted once feedback exists, so feedback-free dumps (and
        # the digests/dedup keys built from them) are byte-identical to
        # what earlier versions of this format produced.
        if self.measurements:
            data["measured_runtime"] = self.measured_runtime
            data["measurements"] = self.measurements
        return data

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "DatabaseEntry":
        runtime = data.get("runtime")
        measured = data.get("measured_runtime")
        return DatabaseEntry(
            embedding=tuple(float(x) for x in data["embedding"]),
            recipe=Recipe.from_dict(data["recipe"]),
            label=str(data.get("label", "")),
            runtime=float(runtime) if runtime is not None else None,
            measured_runtime=float(measured) if measured is not None else None,
            measurements=int(data.get("measurements", 0) or 0),
        )

    def identity(self) -> str:
        """Feedback-insensitive identity: what the entry prescribes, not how
        it has performed so far.  Cross-process dedup keys on this so an
        entry stays one entry as measurements accumulate."""
        return json.dumps({
            "embedding": list(self.embedding),
            "recipe": self.recipe.to_dict(),
            "label": self.label,
            "runtime": self.runtime,
        }, sort_keys=True)

    def bias(self) -> float:
        """This entry's measured-vs-predicted re-ranking bias (1.0 without
        usable feedback — see :func:`~repro.scheduler.embedding.feedback_bias`)."""
        return feedback_bias(self.runtime, self.measured_runtime,
                             self.measurements)


def measured_entry(vector: Sequence[float], label: str, recipe: Recipe,
                   measured_runtime: float) -> DatabaseEntry:
    """A measurement-born entry: a recipe known only from execution.

    Stored in canonical form (retargeted to nest 0, base name), with no
    predicted runtime — its bias stays 1.0 until a prediction exists to
    compare against, but it is now retrievable by similarity.
    """
    canonical = retarget_recipe(recipe, 0, name=recipe_base_name(recipe.name))
    return DatabaseEntry(
        embedding=tuple(float(x) for x in vector),
        recipe=canonical,
        label=label,
        runtime=None,
        measured_runtime=float(measured_runtime),
        measurements=1,
    )


def apply_feedback_record(record: Dict[str, object], database,
                          add_missing: bool = True) -> str:
    """Apply one serialized feedback record to ``database``.

    Records are what :meth:`repro.api.Session.measurement_feedback`
    produces — ``{"embedding", "label", "recipe", "measured", "scale"}``,
    plain JSON values so they cross process boundaries (the worker pool
    ships them to every worker).  ``database`` is any object with the
    :meth:`TuningDatabase.record_measurement` contract.  Returns the
    outcome: ``"applied"`` (an existing entry absorbed the timing),
    ``"added"`` (a measurement-born entry was created), or ``"skipped"``
    (nothing to credit: no embeddable nest, or ``add_missing`` off with no
    match).
    """
    vector = record.get("embedding")
    if vector is None:
        return "skipped"
    recipe = record["recipe"]
    if not isinstance(recipe, Recipe):
        recipe = Recipe.from_dict(recipe)
    embedding = PerformanceEmbedding(
        label=str(record.get("label", "")),
        vector=tuple(float(x) for x in vector))
    scale = record.get("scale")
    entry, created = database.record_measurement(
        embedding, recipe, float(record["measured"]),
        add_missing=add_missing,
        prediction_scale=float(scale) if scale is not None else None)
    if created:
        return "added"
    return "applied" if entry is not None else "skipped"


class TuningDatabase:
    """A collection of tuned loop nests queried by embedding similarity."""

    def __init__(self, entries: Optional[List[DatabaseEntry]] = None):
        self.entries: List[DatabaseEntry] = []
        self._digest = hashlib.sha256(b"tuning-database")
        for entry in entries or []:
            self.add_entry(entry)

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def version(self) -> str:
        """A content-derived version of the database.

        Schedule-cache keys embed this (not the raw entry count): two
        databases of equal size but different content must not share cached
        schedules once the cache persists across processes.
        """
        return f"{len(self.entries)}:{self._digest.hexdigest()[:16]}"

    def add_entry(self, entry: DatabaseEntry) -> DatabaseEntry:
        """Append a ready entry (the seam all mutation funnels through, so
        the content version stays in sync)."""
        self.entries.append(entry)
        self._digest.update(
            json.dumps(entry.to_dict(), sort_keys=True).encode("utf-8"))
        return entry

    def add(self, embedding: PerformanceEmbedding, recipe: Recipe,
            runtime: Optional[float] = None) -> DatabaseEntry:
        """Insert a tuned nest into the database."""
        if len(embedding.vector) != EMBEDDING_SIZE:
            raise ValueError(
                f"embedding has {len(embedding.vector)} features, expected {EMBEDDING_SIZE}")
        return self.add_entry(
            DatabaseEntry(embedding=tuple(embedding.vector), recipe=recipe,
                          label=embedding.label, runtime=runtime))

    def scored_query(self, embedding: PerformanceEmbedding, k: int = 1
                     ) -> List[Tuple[float, float, DatabaseEntry]]:
        """The ``k`` best entries as ``(score, distance, entry)`` triples,
        where ``score = distance * entry.bias()`` folds in online feedback.
        Without feedback every bias is exactly 1.0, so the ranking is the
        plain nearest-neighbor ranking."""
        scored = []
        for entry in self.entries:
            distance = pairwise_distance(embedding.vector, entry.embedding)
            scored.append((distance * entry.bias(), distance, entry))
        scored.sort(key=lambda triple: triple[0])
        return scored[:k]

    def query(self, embedding: PerformanceEmbedding,
              k: int = 1) -> List[Tuple[float, DatabaseEntry]]:
        """Return the ``k`` best entries as ``(distance, entry)`` pairs
        (feedback-re-ranked; the reported distance stays the raw one)."""
        return [(distance, entry)
                for _, distance, entry in self.scored_query(embedding, k)]

    def best_scored(self, embedding: PerformanceEmbedding,
                    max_distance: Optional[float] = None
                    ) -> Optional[Tuple[float, float, DatabaseEntry]]:
        """Lowest-score entry among those within ``max_distance`` (raw
        embedding distance — feedback re-ranks but never widens the
        transfer radius), or None."""
        best = None
        for entry in self.entries:
            distance = pairwise_distance(embedding.vector, entry.embedding)
            if max_distance is not None and distance > max_distance:
                continue
            score = distance * entry.bias()
            if best is None or (score, distance) < (best[0], best[1]):
                best = (score, distance, entry)
        return best

    def best_match(self, embedding: PerformanceEmbedding,
                   max_distance: Optional[float] = None
                   ) -> Optional[DatabaseEntry]:
        """The best entry, or None if the database is empty or too far."""
        best = self.best_scored(embedding, max_distance)
        return best[2] if best is not None else None

    # -- online feedback --------------------------------------------------------

    def find_measurement_target(self, vector: Sequence[float],
                                recipe_key: str
                                ) -> Optional[Tuple[float, DatabaseEntry]]:
        """The entry feedback for ``recipe_key`` should credit: among the
        entries prescribing that recipe (retarget-insensitive), the one
        whose embedding is nearest to ``vector``."""
        best = None
        for entry in self.entries:
            if recipe_identity(entry.recipe) != recipe_key:
                continue
            distance = pairwise_distance(vector, entry.embedding)
            if best is None or distance < best[0]:
                best = (distance, entry)
        return best

    def apply_measurement(self, entry: DatabaseEntry,
                          measured_runtime: float) -> DatabaseEntry:
        """Fold one executed-schedule timing into ``entry`` (cumulative
        mean) and advance the content version, so schedule caches keyed on
        :attr:`version` revalidate against the re-ranked database."""
        count = entry.measurements
        previous = (entry.measured_runtime
                    if count and entry.measured_runtime is not None else 0.0)
        entry.measurements = count + 1
        entry.measured_runtime = ((previous * count + float(measured_runtime))
                                  / (count + 1))
        self._digest.update(json.dumps({
            "feedback": entry.identity(),
            "measured_runtime": entry.measured_runtime,
            "measurements": entry.measurements,
        }, sort_keys=True).encode("utf-8"))
        return entry

    def record_measurement(self, embedding: PerformanceEmbedding,
                           recipe: Recipe, measured_runtime: float,
                           add_missing: bool = True,
                           prediction_scale: Optional[float] = None
                           ) -> Tuple[Optional[DatabaseEntry], bool]:
        """Feed one executed schedule's measured runtime back online.

        Locates the entry by retarget-insensitive recipe identity plus
        nearest embedding and folds the timing in; when no entry prescribes
        the recipe (a search result that was never seeded) a new
        measurement-born entry is added — unless ``add_missing`` is False,
        for callers that only own part of a sharded database.  Returns
        ``(entry_or_None, created)``.

        ``prediction_scale`` is the program-level measured/predicted runtime
        ratio: program measurements credit per-nest entries, so the ratio —
        the quantity :func:`~repro.scheduler.embedding.feedback_bias` is
        after — is projected onto the matched entry's own predicted scale
        rather than comparing a whole-program wall time against a per-nest
        prediction.  Without it (or without a prediction to project onto)
        the raw measured value applies.
        """
        vector = tuple(float(x) for x in
                       getattr(embedding, "vector", embedding))
        key = recipe_identity(recipe)
        found = self.find_measurement_target(vector, key)
        if found is not None:
            entry = found[1]
            value = float(measured_runtime)
            if prediction_scale is not None and entry.runtime:
                value = entry.runtime * float(prediction_scale)
            return self.apply_measurement(entry, value), False
        if not add_missing:
            return None, False
        entry = measured_entry(vector, getattr(embedding, "label", ""),
                               recipe, measured_runtime)
        return self.add_entry(entry), True

    # -- persistence -----------------------------------------------------------

    def to_json(self, indent: int = 2) -> str:
        return json.dumps([entry.to_dict() for entry in self.entries], indent=indent)

    @staticmethod
    def from_json(text: str) -> "TuningDatabase":
        return TuningDatabase([DatabaseEntry.from_dict(item) for item in json.loads(text)])

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @staticmethod
    def load(path: str) -> "TuningDatabase":
        with open(path, "r", encoding="utf-8") as handle:
            return TuningDatabase.from_json(handle.read())

"""Transfer-tuning database.

The database stores pairs of (performance embedding, optimization recipe) for
normalized loop nests.  The daisy scheduler seeds it from the normalized A
variants of the benchmarks and queries it when scheduling new programs
(Section 4, "Seeding a Scheduling Database").
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..transforms.recipe import Recipe
from .embedding import EMBEDDING_SIZE, PerformanceEmbedding, pairwise_distance


@dataclass
class DatabaseEntry:
    """One tuned loop nest: its embedding, its recipe, and provenance."""

    embedding: Tuple[float, ...]
    recipe: Recipe
    label: str = ""
    runtime: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "embedding": list(self.embedding),
            "recipe": self.recipe.to_dict(),
            "label": self.label,
            "runtime": self.runtime,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "DatabaseEntry":
        runtime = data.get("runtime")
        return DatabaseEntry(
            embedding=tuple(float(x) for x in data["embedding"]),
            recipe=Recipe.from_dict(data["recipe"]),
            label=str(data.get("label", "")),
            runtime=float(runtime) if runtime is not None else None,
        )


class TuningDatabase:
    """A collection of tuned loop nests queried by embedding similarity."""

    def __init__(self, entries: Optional[List[DatabaseEntry]] = None):
        self.entries: List[DatabaseEntry] = []
        self._digest = hashlib.sha256(b"tuning-database")
        for entry in entries or []:
            self.add_entry(entry)

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def version(self) -> str:
        """A content-derived version of the database.

        Schedule-cache keys embed this (not the raw entry count): two
        databases of equal size but different content must not share cached
        schedules once the cache persists across processes.
        """
        return f"{len(self.entries)}:{self._digest.hexdigest()[:16]}"

    def add_entry(self, entry: DatabaseEntry) -> DatabaseEntry:
        """Append a ready entry (the seam all mutation funnels through, so
        the content version stays in sync)."""
        self.entries.append(entry)
        self._digest.update(
            json.dumps(entry.to_dict(), sort_keys=True).encode("utf-8"))
        return entry

    def add(self, embedding: PerformanceEmbedding, recipe: Recipe,
            runtime: Optional[float] = None) -> DatabaseEntry:
        """Insert a tuned nest into the database."""
        if len(embedding.vector) != EMBEDDING_SIZE:
            raise ValueError(
                f"embedding has {len(embedding.vector)} features, expected {EMBEDDING_SIZE}")
        return self.add_entry(
            DatabaseEntry(embedding=tuple(embedding.vector), recipe=recipe,
                          label=embedding.label, runtime=runtime))

    def query(self, embedding: PerformanceEmbedding,
              k: int = 1) -> List[Tuple[float, DatabaseEntry]]:
        """Return the ``k`` nearest entries as ``(distance, entry)`` pairs."""
        scored = [(pairwise_distance(embedding.vector, entry.embedding), entry)
                  for entry in self.entries]
        scored.sort(key=lambda pair: pair[0])
        return scored[:k]

    def best_match(self, embedding: PerformanceEmbedding,
                   max_distance: Optional[float] = None
                   ) -> Optional[DatabaseEntry]:
        """The nearest entry, or None if the database is empty or too far."""
        results = self.query(embedding, k=1)
        if not results:
            return None
        distance, entry = results[0]
        if max_distance is not None and distance > max_distance:
            return None
        return entry

    # -- persistence -----------------------------------------------------------

    def to_json(self, indent: int = 2) -> str:
        return json.dumps([entry.to_dict() for entry in self.entries], indent=indent)

    @staticmethod
    def from_json(text: str) -> "TuningDatabase":
        return TuningDatabase([DatabaseEntry.from_dict(item) for item in json.loads(text)])

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @staticmethod
    def load(path: str) -> "TuningDatabase":
        with open(path, "r", encoding="utf-8") as handle:
            return TuningDatabase.from_json(handle.read())

"""Sharded transfer-tuning database.

A :class:`ShardedTuningDatabase` partitions its entries across ``N``
independent :class:`~repro.scheduler.database.TuningDatabase` shards keyed
by a hash of the performance embedding.  Each shard has its own lock, so
concurrent tunes touching different shards do not serialize, and each shard
persists independently — the layout a multi-machine deployment would use,
with one shard per database node.

Queries run scatter-gather: every shard reports its ``k`` nearest entries
and the gathered candidates are merged by distance, which returns exactly
the same nearest neighbors as the unsharded database holding the union of
all entries (shard-local top-``k`` is a superset filter of global
top-``k``).

Persistence comes in two formats: a single JSON document (shard structure
preserved) and a SQLite file with one row per entry, which is what the
``python -m repro.serving db-shard`` command manipulates.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..transforms.recipe import Recipe
from .database import (DatabaseEntry, TuningDatabase, measured_entry,
                       recipe_identity)
from .embedding import PerformanceEmbedding

DEFAULT_NUM_SHARDS = 4


def embedding_shard(vector: Sequence[float], num_shards: int) -> int:
    """Deterministic shard index of one embedding vector.

    The vector is hashed through a stable decimal rendering (so that values
    round-tripped through JSON land in the same shard) and reduced modulo
    the shard count.
    """
    text = json.dumps([format(float(x), ".12g") for x in vector])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


class ShardedTuningDatabase:
    """Drop-in replacement for :class:`TuningDatabase`, partitioned N ways.

    The query/``best_match``/``add``/``len`` surface matches
    :class:`TuningDatabase`, so the daisy scheduler and the
    :class:`~repro.api.Session` facade accept either interchangeably.
    """

    def __init__(self, num_shards: int = DEFAULT_NUM_SHARDS,
                 entries: Optional[Iterable[DatabaseEntry]] = None):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards
        self._shards = [TuningDatabase() for _ in range(num_shards)]
        self._locks = [threading.RLock() for _ in range(num_shards)]
        for entry in entries or ():
            self.add_entry(entry)

    # -- the TuningDatabase surface ------------------------------------------------

    def __len__(self) -> int:
        return sum(self.shard_sizes())

    def add(self, embedding: PerformanceEmbedding, recipe: Recipe,
            runtime: Optional[float] = None) -> DatabaseEntry:
        """Insert a tuned nest into the shard its embedding hashes to."""
        index = embedding_shard(embedding.vector, self.num_shards)
        with self._locks[index]:
            return self._shards[index].add(embedding, recipe, runtime)

    def add_entry(self, entry: DatabaseEntry) -> DatabaseEntry:
        index = embedding_shard(entry.embedding, self.num_shards)
        with self._locks[index]:
            return self._shards[index].add_entry(entry)

    def query(self, embedding: PerformanceEmbedding,
              k: int = 1) -> List[Tuple[float, DatabaseEntry]]:
        """Scatter the query to every shard, gather, and merge by score
        (feedback-re-ranked distance, matching :meth:`TuningDatabase.query`)."""
        gathered: List[Tuple[float, float, DatabaseEntry]] = []
        for index in range(self.num_shards):
            with self._locks[index]:
                gathered.extend(self._shards[index].scored_query(embedding, k))
        gathered.sort(key=lambda triple: triple[0])
        return [(distance, entry) for _, distance, entry in gathered[:k]]

    def best_match(self, embedding: PerformanceEmbedding,
                   max_distance: Optional[float] = None
                   ) -> Optional[DatabaseEntry]:
        best = None
        for index in range(self.num_shards):
            with self._locks[index]:
                candidate = self._shards[index].best_scored(embedding,
                                                            max_distance)
            if candidate is not None and (
                    best is None or candidate[:2] < best[:2]):
                best = candidate
        return best[2] if best is not None else None

    def record_measurement(self, embedding: PerformanceEmbedding,
                           recipe: Recipe, measured_runtime: float,
                           add_missing: bool = True,
                           prediction_scale: Optional[float] = None
                           ) -> Tuple[Optional[DatabaseEntry], bool]:
        """Online feedback across shards (see
        :meth:`TuningDatabase.record_measurement`).

        The target entry may live in any shard — entries shard by their own
        embedding, feedback arrives with the embedding of the nest it was
        measured on — so the recipe match scans every shard; a
        measurement-born entry routes to the shard the feedback embedding
        hashes to, like any other insert.
        """
        vector = tuple(float(x) for x in
                       getattr(embedding, "vector", embedding))
        key = recipe_identity(recipe)
        best = None  # (distance, shard_index, entry)
        for index in range(self.num_shards):
            with self._locks[index]:
                found = self._shards[index].find_measurement_target(vector,
                                                                    key)
            if found is not None and (best is None or found[0] < best[0]):
                best = (found[0], index, found[1])
        if best is not None:
            _, index, entry = best
            value = float(measured_runtime)
            if prediction_scale is not None and entry.runtime:
                # Same projection as the unsharded path: the program-level
                # measured/predicted ratio on the entry's own scale.
                value = entry.runtime * float(prediction_scale)
            with self._locks[index]:
                return (self._shards[index].apply_measurement(
                    entry, value), False)
        if not add_missing:
            return None, False
        entry = measured_entry(vector, getattr(embedding, "label", ""),
                               recipe, measured_runtime)
        return self.add_entry(entry), True

    # -- shard introspection ---------------------------------------------------------

    @property
    def entries(self) -> List[DatabaseEntry]:
        """All entries, shard by shard (a flat copy, not a live view)."""
        collected: List[DatabaseEntry] = []
        for index in range(self.num_shards):
            with self._locks[index]:
                collected.extend(self._shards[index].entries)
        return collected

    @property
    def version(self) -> str:
        """Content-derived version combining every shard's version (same
        contract as :attr:`TuningDatabase.version`)."""
        parts = []
        for index in range(self.num_shards):
            with self._locks[index]:
                parts.append(self._shards[index].version)
        digest = hashlib.sha256("/".join(parts).encode("utf-8")).hexdigest()
        return f"{len(self)}:{digest[:16]}"

    def shard_sizes(self) -> List[int]:
        sizes = []
        for index in range(self.num_shards):
            with self._locks[index]:
                sizes.append(len(self._shards[index]))
        return sizes

    def shard(self, index: int) -> TuningDatabase:
        """A copy of one shard as a standalone :class:`TuningDatabase`.

        This is the deployment seam of a multi-process (or multi-machine)
        worker pool: worker ``i`` of ``num_shards`` workers holds exactly
        ``shard(i)``, and gathered tuning results are routed back through
        :func:`embedding_shard` / :meth:`add_entries` — see
        :class:`repro.serving.workers.WorkerPool`.
        """
        if not 0 <= index < self.num_shards:
            raise IndexError(
                f"shard index {index} out of range for {self.num_shards} shards")
        with self._locks[index]:
            return TuningDatabase(list(self._shards[index].entries))

    def add_entries(self, entries: Iterable[DatabaseEntry]) -> int:
        """Merge entries (e.g. gathered from workers after tuning) into the
        shards their embeddings hash to; returns how many were added."""
        count = 0
        for entry in entries:
            self.add_entry(entry)
            count += 1
        return count

    def merged(self) -> TuningDatabase:
        """The equivalent unsharded database (a copy)."""
        return TuningDatabase(self.entries)

    def rebalance(self, num_shards: int) -> "ShardedTuningDatabase":
        """A new database with the same entries hashed across ``num_shards``."""
        return ShardedTuningDatabase(num_shards, self.entries)

    @staticmethod
    def from_database(database: TuningDatabase,
                      num_shards: int = DEFAULT_NUM_SHARDS
                      ) -> "ShardedTuningDatabase":
        return ShardedTuningDatabase(num_shards, database.entries)

    # -- persistence: JSON -------------------------------------------------------------

    def to_json(self, indent: int = 2) -> str:
        payload = {
            "num_shards": self.num_shards,
            "shards": [[entry.to_dict() for entry in shard.entries]
                       for shard in self._shards],
        }
        return json.dumps(payload, indent=indent)

    @staticmethod
    def from_json(text: str) -> "ShardedTuningDatabase":
        data = json.loads(text)
        if isinstance(data, list):
            # An unsharded TuningDatabase dump: hash its entries into shards.
            return ShardedTuningDatabase(
                DEFAULT_NUM_SHARDS,
                [DatabaseEntry.from_dict(item) for item in data])
        database = ShardedTuningDatabase(int(data["num_shards"]))
        for index, shard_entries in enumerate(data["shards"]):
            for item in shard_entries:
                database._shards[index].add_entry(DatabaseEntry.from_dict(item))
        return database

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @staticmethod
    def load(path: str) -> "ShardedTuningDatabase":
        with open(path, "r", encoding="utf-8") as handle:
            return ShardedTuningDatabase.from_json(handle.read())

    # -- persistence: SQLite -----------------------------------------------------------

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS entries (
            id INTEGER PRIMARY KEY AUTOINCREMENT,
            shard INTEGER NOT NULL,
            embedding TEXT NOT NULL,
            recipe TEXT NOT NULL,
            label TEXT NOT NULL,
            runtime REAL,
            measured_runtime REAL,
            measurements INTEGER NOT NULL DEFAULT 0
        )
    """
    _META_SCHEMA = """
        CREATE TABLE IF NOT EXISTS meta (
            key TEXT PRIMARY KEY,
            value TEXT NOT NULL
        )
    """

    @staticmethod
    def _ensure_feedback_columns(conn: sqlite3.Connection) -> None:
        """Upgrade a pre-feedback ``entries`` table in place (additive)."""
        columns = {row[1] for row in
                   conn.execute("PRAGMA table_info(entries)")}
        if "measured_runtime" not in columns:
            conn.execute(
                "ALTER TABLE entries ADD COLUMN measured_runtime REAL")
        if "measurements" not in columns:
            conn.execute("ALTER TABLE entries ADD COLUMN measurements "
                         "INTEGER NOT NULL DEFAULT 0")

    def save_sqlite(self, path: str) -> None:
        conn = sqlite3.connect(path)
        try:
            conn.execute(self._SCHEMA)
            conn.execute(self._META_SCHEMA)
            self._ensure_feedback_columns(conn)
            conn.execute("DELETE FROM entries")
            conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                ("num_shards", str(self.num_shards)))
            for index, shard in enumerate(self._shards):
                with self._locks[index]:
                    rows = [(index,
                             json.dumps(list(entry.embedding)),
                             json.dumps(entry.recipe.to_dict()),
                             entry.label,
                             entry.runtime,
                             entry.measured_runtime,
                             entry.measurements)
                            for entry in shard.entries]
                conn.executemany(
                    "INSERT INTO entries (shard, embedding, recipe, label, "
                    "runtime, measured_runtime, measurements) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?)", rows)
            conn.commit()
        finally:
            conn.close()

    @staticmethod
    def load_sqlite(path: str,
                    num_shards: Optional[int] = None) -> "ShardedTuningDatabase":
        """Load from SQLite; ``num_shards`` rehashes into a new shard count
        (default: the count the file was saved with)."""
        conn = sqlite3.connect(path)
        try:
            try:
                rows = conn.execute(
                    "SELECT shard, embedding, recipe, label, runtime, "
                    "measured_runtime, measurements "
                    "FROM entries ORDER BY id").fetchall()
            except sqlite3.OperationalError:
                # A pre-feedback file: no feedback columns to read.
                rows = [row + (None, 0) for row in conn.execute(
                    "SELECT shard, embedding, recipe, label, runtime "
                    "FROM entries ORDER BY id").fetchall()]
            meta = conn.execute(
                "SELECT value FROM meta WHERE key = 'num_shards'").fetchone()
        finally:
            conn.close()
        saved_shards = (int(meta[0]) if meta is not None
                        else max((row[0] for row in rows), default=0) + 1)
        target_shards = num_shards or saved_shards
        # Keeping the saved shard count preserves the stored layout exactly
        # (like the JSON path); a different count rehashes every entry.
        preserve_layout = target_shards == saved_shards
        database = ShardedTuningDatabase(target_shards)
        for (shard, embedding, recipe, label, runtime,
             measured_runtime, measurements) in rows:
            entry = DatabaseEntry(
                embedding=tuple(float(x) for x in json.loads(embedding)),
                recipe=Recipe.from_dict(json.loads(recipe)),
                label=label,
                runtime=float(runtime) if runtime is not None else None,
                measured_runtime=(float(measured_runtime)
                                  if measured_runtime is not None else None),
                measurements=int(measurements or 0))
            if preserve_layout:
                database._shards[shard].add_entry(entry)
            else:
                database.add_entry(entry)
        return database

"""A Polly-like polyhedral baseline scheduler.

Polly detects static control parts (SCoPs), tiles permutable bands, runs
loops in parallel, and strip-mine-vectorizes innermost loops — but it does
not perform the a-priori normalization this paper proposes: it neither
maximally fissions fused computations nor reorders loops to minimize strides
up front, and it does not replace idioms with BLAS calls.  That is exactly
the behavior the paper contrasts daisy with (Section 4.1): good on loop
orders its cost function models well, and unable to repair the strided B
variants.

This baseline reproduces that behavior on our IR:

* a top-level nest is a SCoP when all of its accesses and bounds are affine;
* SCoPs get rectangular tiling of the permutable outer band, OpenMP-style
  parallelization of the outermost parallel loop, and vectorization of the
  innermost loop when it is unit-stride;
* non-SCoPs are left untouched.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

from ..analysis.affine import computation_accesses
from ..analysis.parallelism import analyze_loop_parallelism
from ..ir.nodes import Computation, Loop, Node, Program
from ..transforms.base import TransformationError
from ..transforms.parallelize import Parallelize, Vectorize
from ..transforms.recipe import Recipe, apply_recipe
from ..transforms.tiling import Tile
from .base import NestScheduleInfo, ScheduleResult, Scheduler

#: Default tile size used by Polly's isl scheduler.
POLLY_TILE_SIZE = 32


def nest_is_scop(nest: Loop) -> bool:
    """True when every access and every loop bound in the nest is affine."""
    def recurse(node: Node, enclosing: List[str]) -> bool:
        if isinstance(node, Loop):
            symbols = (node.start.free_symbols() | node.end.free_symbols()
                       | node.step.free_symbols())
            # Bounds may reference parameters and outer iterators only; any
            # Read/Call inside bounds would have produced non-affine symbols
            # at construction time, so checking affinity of accesses suffices.
            inner = enclosing + [node.iterator]
            return all(recurse(child, inner) for child in node.body)
        if isinstance(node, Computation):
            for access in computation_accesses(node, enclosing):
                if not access.affine:
                    return False
            return True
        return False

    return recurse(nest, [])


class PollyScheduler(Scheduler):
    """Tiling + parallelization + strip-mine vectorization, no normalization."""

    name = "polly"

    def __init__(self, machine=None, threads: int = 1,
                 tile_size: int = POLLY_TILE_SIZE, second_level_tiling: bool = True):
        from ..perf.machine import DEFAULT_MACHINE
        super().__init__(machine or DEFAULT_MACHINE, threads)
        self.tile_size = tile_size
        self.second_level_tiling = second_level_tiling

    def schedule(self, program: Program,
                 parameters: Mapping[str, int]) -> ScheduleResult:
        scheduled = program.copy()
        result = ScheduleResult(scheduler=self.name, program=scheduled)

        for index, node in enumerate(scheduled.body):
            if not isinstance(node, Loop):
                continue
            if not nest_is_scop(node):
                result.nests.append(NestScheduleInfo(index, "unsupported", None,
                                                     "not a SCoP"))
                continue
            recipe = self._build_recipe(node, index)
            application = apply_recipe(scheduled, recipe, strict=False)
            status = "optimized" if application.applied else "unchanged"
            detail = "; ".join(msg for _, msg in application.failed)
            result.nests.append(NestScheduleInfo(index, status, recipe, detail))
        return result

    def _build_recipe(self, nest: Loop, index: int) -> Recipe:
        recipe = Recipe(f"polly#{index}")
        band = nest.perfectly_nested_band()

        # Tile the parallel loops of the band (Polly tiles permutable bands).
        tile_sizes = {}
        for loop in band:
            info = analyze_loop_parallelism(loop)
            if info.is_parallel and len(band) >= 2:
                tile_sizes[loop.iterator] = self.tile_size
        if tile_sizes:
            recipe.add(Tile(index, tile_sizes))

        # -polly-parallel: outermost parallel loop runs with OpenMP.
        recipe.add(Parallelize(index))
        # -polly-vectorizer=stripmine: innermost loop, profitable only when
        # the accesses are contiguous.
        recipe.add(Vectorize(index, require_unit_stride=True))
        return recipe

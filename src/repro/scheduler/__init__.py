"""Auto-schedulers: daisy plus every baseline the paper compares against,
and the transfer-tuning database they share — unsharded
(:class:`TuningDatabase`) or partitioned by embedding hash
(:class:`ShardedTuningDatabase`, the layout multi-process serving maps one
shard per worker)."""

from .base import (NestScheduleInfo, ScheduleResult, Scheduler,
                   retarget_recipe)
from .compiler_baseline import ClangScheduler, IccScheduler
from .daisy import DaisyConfig, DaisyScheduler
from .database import DatabaseEntry, TuningDatabase
from .embedding import (EMBEDDING_SIZE, FEATURE_NAMES, PerformanceEmbedding,
                        embed_nest, embed_program, pairwise_distance)
from .evolutionary import EvolutionarySearch, SearchConfig, SearchOutcome
from .frameworks import DaceScheduler, NumbaScheduler, NumpyScheduler
from .polyhedral import PollyScheduler, nest_is_scop
from .sharding import ShardedTuningDatabase, embedding_shard
from .tiramisu import MctsConfig, TiramisuScheduler

__all__ = [
    "NestScheduleInfo", "ScheduleResult", "Scheduler", "retarget_recipe",
    "ClangScheduler", "IccScheduler",
    "DaisyConfig", "DaisyScheduler",
    "DatabaseEntry", "TuningDatabase",
    "EMBEDDING_SIZE", "FEATURE_NAMES", "PerformanceEmbedding",
    "embed_nest", "embed_program", "pairwise_distance",
    "EvolutionarySearch", "SearchConfig", "SearchOutcome",
    "DaceScheduler", "NumbaScheduler", "NumpyScheduler",
    "PollyScheduler", "nest_is_scop",
    "ShardedTuningDatabase", "embedding_shard",
    "MctsConfig", "TiramisuScheduler",
]

"""Execution models of the Python array frameworks (NumPy, Numba, DaCe).

Figure 9 compares daisy against performance-oriented Python frameworks.  All
three execute the same NumPy-level program very differently:

* **NumPy** dispatches each array operation to a pre-compiled, vectorized
  (but single-threaded) C loop, materializing temporaries, and calls BLAS
  for the operations that have custom operators.  Explicit Python-level
  loops around array operations pay interpreter dispatch overhead per
  iteration.
* **Numba** JIT-compiles explicit loops: innermost unit-stride loops are
  vectorized and provably parallel outer loops can run in parallel, but
  loop nests are neither reordered nor lifted to BLAS calls.
* **DaCe** turns the program into an SDFG: parallel maps are executed with
  OpenMP, producer/consumer maps are fused, and library nodes (BLAS) are
  used where the frontend created them — but, without a-priori
  normalization, loop nests keep the structure the developer wrote.

The pythonic frontend marks Python-level loops by giving their iterators a
``py_`` prefix; the NumPy model charges dispatch overhead for those.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

from ..analysis.parallelism import analyze_loop_parallelism
from ..ir.nodes import LibraryCall, Loop, Program
from ..transforms.fusion import fuse_producer_consumer_chains
from ..transforms.idiom import match_blas3, build_library_call
from ..transforms.parallelize import Parallelize, Vectorize
from ..transforms.recipe import Recipe, apply_recipe
from .base import NestScheduleInfo, ScheduleResult, Scheduler

#: Interpreter dispatch cost of one NumPy operator call, seconds.
PYTHON_DISPATCH_OVERHEAD = 2.0e-6
#: Prefix that the pythonic frontend gives to interpreter-level loops.
PYTHON_LOOP_PREFIX = "py_"


def _python_loop_iterations(program: Program, parameters: Mapping[str, int]) -> float:
    """Number of interpreter-level operator dispatches in the program."""
    total = 0.0
    for node in program.body:
        if isinstance(node, LibraryCall):
            total += 1.0
            continue
        if not isinstance(node, Loop):
            continue
        multiplier = 1.0
        found_python_loop = False
        for loop in node.perfectly_nested_band():
            if loop.iterator.startswith(PYTHON_LOOP_PREFIX):
                found_python_loop = True
                try:
                    multiplier *= max(1, loop.trip_count(dict(parameters)))
                except (KeyError, ValueError):
                    multiplier *= 1.0
        total += multiplier if found_python_loop else 1.0
    return total


class NumpyScheduler(Scheduler):
    """NumPy: per-operator vectorized execution, single-threaded, BLAS where
    custom operators exist."""

    name = "numpy"

    def __init__(self, machine=None, threads: int = 1):
        from ..perf.machine import DEFAULT_MACHINE
        # NumPy element-wise operators are single threaded.
        super().__init__(machine or DEFAULT_MACHINE, 1)

    def schedule(self, program: Program,
                 parameters: Mapping[str, int]) -> ScheduleResult:
        scheduled = program.copy()
        result = ScheduleResult(scheduler=self.name, program=scheduled)
        for index, node in enumerate(scheduled.body):
            if not isinstance(node, Loop):
                continue
            recipe = Recipe(f"{self.name}#{index}")
            recipe.add(Vectorize(index, require_unit_stride=True))
            application = apply_recipe(scheduled, recipe, strict=False)
            status = "optimized" if application.applied else "unchanged"
            result.nests.append(NestScheduleInfo(index, status, recipe, "numpy operator"))
        return result

    def estimate(self, program: Program, parameters: Mapping[str, int]) -> float:
        result = self.schedule(program, parameters)
        runtime = self.cost_model.estimate_seconds(result.program, parameters)
        dispatches = _python_loop_iterations(result.program, parameters)
        return runtime + dispatches * PYTHON_DISPATCH_OVERHEAD


class NumbaScheduler(Scheduler):
    """Numba: JIT loops, auto-vectorization, auto-parallelization; no BLAS
    lifting and no loop reordering."""

    name = "numba"

    def schedule(self, program: Program,
                 parameters: Mapping[str, int]) -> ScheduleResult:
        scheduled = program.copy()
        result = ScheduleResult(scheduler=self.name, program=scheduled)
        for index, node in enumerate(scheduled.body):
            if not isinstance(node, Loop):
                continue
            recipe = Recipe(f"{self.name}#{index}")
            if analyze_loop_parallelism(node).is_parallel:
                recipe.add(Parallelize(index))
            recipe.add(Vectorize(index, require_unit_stride=True))
            application = apply_recipe(scheduled, recipe, strict=False)
            status = "optimized" if application.applied else "unchanged"
            result.nests.append(NestScheduleInfo(index, status, recipe, "numba jit"))
        return result


class DaceScheduler(Scheduler):
    """DaCe: SDFG map parallelization, map fusion, and BLAS library nodes —
    without a-priori normalization."""

    name = "dace"

    def schedule(self, program: Program,
                 parameters: Mapping[str, int]) -> ScheduleResult:
        scheduled = program.copy()
        fused = fuse_producer_consumer_chains(scheduled)
        result = ScheduleResult(scheduler=self.name, program=scheduled,
                                notes=f"fused {fused} producer/consumer map pairs")

        for index in range(len(scheduled.body)):
            node = scheduled.body[index]
            if not isinstance(node, Loop):
                continue
            # Library nodes: DaCe replaces loop nests that literally match a
            # BLAS pattern, but it does not normalize first.
            match = match_blas3(node)
            if match is not None:
                scheduled.body[index] = build_library_call(node, match)
                result.nests.append(NestScheduleInfo(index, "optimized", None,
                                                     f"library node {match.routine}"))
                continue
            recipe = Recipe(f"{self.name}#{index}")
            if analyze_loop_parallelism(node).is_parallel:
                recipe.add(Parallelize(index))
            recipe.add(Vectorize(index, require_unit_stride=True))
            application = apply_recipe(scheduled, recipe, strict=False)
            status = "optimized" if application.applied else "unchanged"
            result.nests.append(NestScheduleInfo(index, status, recipe, "sdfg map"))
        return result

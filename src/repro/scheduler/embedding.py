"""Performance embeddings of loop nests.

The daisy scheduler retrieves optimization recipes by *similarity-based
transfer tuning*: each loop nest is mapped to a fixed-length feature vector
("performance embedding"), and the Euclidean distance between embeddings
determines the most similar loop nests (Section 4).  The embedding captures
the properties that performance depends on after normalization: iteration
counts, arithmetic intensity, stride classes, reductions, parallelism, and
footprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..analysis.affine import computation_accesses
from ..analysis.parallelism import analyze_loop_parallelism
from ..analysis.strides import DEFAULT_PARAMETER_VALUE, _array_strides, access_stride
from ..ir.arrays import Array
from ..ir.nodes import Computation, LibraryCall, Loop, Node, Program
from ..perf.model import count_flops

#: Names of the embedding dimensions, in order.
FEATURE_NAMES: Tuple[str, ...] = (
    "log_total_iterations",
    "loop_depth",
    "band_depth",
    "num_computations",
    "num_accesses",
    "flops_per_iteration",
    "frac_zero_stride",
    "frac_unit_stride",
    "frac_strided",
    "frac_non_affine",
    "has_reduction",
    "num_parallel_loops",
    "log_footprint_bytes",
    "is_perfect_nest",
)

EMBEDDING_SIZE = len(FEATURE_NAMES)


@dataclass(frozen=True)
class PerformanceEmbedding:
    """A loop nest's feature vector plus a human-readable label."""

    label: str
    vector: Tuple[float, ...]

    def distance(self, other: "PerformanceEmbedding") -> float:
        return float(np.linalg.norm(np.asarray(self.vector) - np.asarray(other.vector)))

    def as_dict(self) -> Dict[str, float]:
        return dict(zip(FEATURE_NAMES, self.vector))


def _loop_trips(nest: Loop, parameters: Mapping[str, int]) -> Dict[str, float]:
    bindings = dict(parameters)
    trips: Dict[str, float] = {}
    midpoints: Dict[str, float] = {}
    for loop in nest.iter_loops():
        env = {**bindings, **midpoints}
        try:
            start = loop.start.evaluate(env)
            end = loop.end.evaluate(env)
            step = loop.step.evaluate(env)
            trip = max(0.0, (end - start) / step) if step > 0 else 0.0
            midpoints[loop.iterator] = start + (end - start) / 2.0
        except (KeyError, ZeroDivisionError):
            trip = float(DEFAULT_PARAMETER_VALUE)
            midpoints[loop.iterator] = trip / 2.0
        trips[loop.iterator] = trip
    return trips


def embed_nest(nest: Loop, arrays: Mapping[str, Array],
               parameters: Optional[Mapping[str, int]] = None,
               label: str = "") -> PerformanceEmbedding:
    """Compute the performance embedding of one loop nest."""
    parameters = dict(parameters or {})
    trips = _loop_trips(nest, parameters)

    total_iterations = 1.0
    computations: List[Tuple[Computation, List[str]]] = []
    zero = unit = strided = non_affine = 0
    flops = 0.0
    footprint = 0.0
    has_reduction = 0.0

    def recurse(node: Node, enclosing: List[str]) -> None:
        nonlocal zero, unit, strided, non_affine, flops, footprint, has_reduction
        if isinstance(node, Loop):
            inner = enclosing + [node.iterator]
            for child in node.body:
                recurse(child, inner)
        elif isinstance(node, Computation):
            computations.append((node, list(enclosing)))
            iterations = 1.0
            for iterator in enclosing:
                iterations *= max(trips.get(iterator, 1.0), 1.0)
            flops += count_flops(node.value) * iterations
            if node.is_reduction():
                has_reduction = 1.0
            innermost = enclosing[-1] if enclosing else None
            for access in computation_accesses(node, enclosing):
                if access.array not in arrays:
                    continue
                arr = arrays[access.array]
                footprint += arr.size_in_bytes(
                    {**{s: DEFAULT_PARAMETER_VALUE for dim in arr.shape
                        for s in dim.free_symbols()}, **parameters})
                if not access.affine:
                    non_affine += 1
                    continue
                if innermost is None:
                    zero += 1
                    continue
                stride = access_stride(access, innermost,
                                       _array_strides(arr, parameters))
                if stride is None:
                    non_affine += 1
                elif stride == 0:
                    zero += 1
                elif abs(stride) == 1:
                    unit += 1
                else:
                    strided += 1
        elif isinstance(node, LibraryCall):
            flops += float(node.flop_expr.evaluate(
                {**{s: DEFAULT_PARAMETER_VALUE for s in node.flop_expr.free_symbols()},
                 **parameters}))

    recurse(nest, [])

    for loop in nest.perfectly_nested_band():
        total_iterations *= max(trips.get(loop.iterator, 1.0), 1.0)

    num_accesses = zero + unit + strided + non_affine
    denominator = max(num_accesses, 1)
    num_parallel = sum(1 for loop in nest.iter_loops()
                       if analyze_loop_parallelism(loop).is_parallel)
    num_computations = len(computations)
    flops_per_iter = flops / max(total_iterations, 1.0)

    vector = (
        float(np.log1p(total_iterations)),
        float(nest.depth()),
        float(len(nest.perfectly_nested_band())),
        float(num_computations),
        float(num_accesses),
        float(min(flops_per_iter, 64.0)),
        zero / denominator,
        unit / denominator,
        strided / denominator,
        non_affine / denominator,
        has_reduction,
        float(num_parallel),
        float(np.log1p(footprint)),
        1.0 if nest.is_perfect_nest() else 0.0,
    )
    return PerformanceEmbedding(label=label or nest.iterator, vector=vector)


def embed_program(program: Program,
                  parameters: Optional[Mapping[str, int]] = None
                  ) -> List[PerformanceEmbedding]:
    """Embeddings of every top-level loop nest of a program."""
    embeddings = []
    for index, node in enumerate(program.body):
        if isinstance(node, Loop):
            embeddings.append(embed_nest(node, program.arrays, parameters,
                                         label=f"{program.name}#{index}"))
    return embeddings


def pairwise_distance(first: Sequence[float], second: Sequence[float]) -> float:
    """Euclidean distance between two raw embedding vectors."""
    return float(np.linalg.norm(np.asarray(first) - np.asarray(second)))


#: Clamp range of :func:`feedback_bias` — one measurement can at most
#: quadruple or quarter an entry's effective distance, so a single noisy
#: timing cannot permanently bury (or crown) a recipe.
FEEDBACK_BIAS_RANGE: Tuple[float, float] = (0.25, 4.0)


def feedback_bias(predicted_runtime: Optional[float],
                  measured_runtime: Optional[float],
                  measurements: int) -> float:
    """Multiplicative nearest-neighbor re-ranking bias from measurements.

    Transfer tuning ranks database entries by embedding distance alone;
    online feedback (:meth:`repro.api.Session.record_measurement`) stores
    how executed schedules *actually* performed.  The bias scales an
    entry's distance by ``(measured / predicted) ** confidence`` where the
    confidence weight ``measurements / (measurements + 1)`` grows toward 1
    as evidence accumulates: entries that beat their cost-model prediction
    rank closer, entries that disappointed rank farther.

    Returns exactly ``1.0`` when there is no usable feedback, so scoring
    with the bias is bitwise identical to plain distance ranking on
    feedback-free databases.
    """
    if (measurements <= 0 or measured_runtime is None
            or predicted_runtime is None or predicted_runtime <= 0.0
            or measured_runtime <= 0.0):
        return 1.0
    ratio = measured_runtime / predicted_runtime
    confidence = measurements / (measurements + 1.0)
    low, high = FEEDBACK_BIAS_RANGE
    return min(high, max(low, ratio ** confidence))

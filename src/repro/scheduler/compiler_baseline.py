"""Native-compiler baselines (icc and clang).

The paper compares against ``icc -O3 -parallel`` (auto-vectorization plus
auto-parallelization) and uses ``clang -O3`` as the plain baseline in the
ablation study.  Neither restructures loop nests: the developer's loop order
is executed as written.  These baselines reproduce that behavior:

* ``ClangScheduler`` vectorizes the innermost loop when it is contiguous and
  free of (non-reduction) loop-carried dependences; nothing else.
* ``IccScheduler`` additionally auto-parallelizes the outermost loop of each
  nest when it can prove it parallel.
"""

from __future__ import annotations

from typing import Mapping

from ..analysis.parallelism import analyze_loop_parallelism
from ..ir.nodes import Loop, Program
from ..transforms.parallelize import Parallelize, Vectorize
from ..transforms.recipe import Recipe, apply_recipe
from .base import NestScheduleInfo, ScheduleResult, Scheduler


class ClangScheduler(Scheduler):
    """``clang -O3``: innermost-loop auto-vectorization only."""

    name = "clang"

    def schedule(self, program: Program,
                 parameters: Mapping[str, int]) -> ScheduleResult:
        scheduled = program.copy()
        result = ScheduleResult(scheduler=self.name, program=scheduled)
        for index, node in enumerate(scheduled.body):
            if not isinstance(node, Loop):
                continue
            recipe = Recipe(f"{self.name}#{index}")
            recipe.add(Vectorize(index, require_unit_stride=True))
            application = apply_recipe(scheduled, recipe, strict=False)
            status = "optimized" if application.applied else "unchanged"
            result.nests.append(NestScheduleInfo(index, status, recipe,
                                                 "; ".join(m for _, m in application.failed)))
        return result


class IccScheduler(Scheduler):
    """``icc -O3 -parallel``: auto-vectorization plus auto-parallelization."""

    name = "icc"

    def schedule(self, program: Program,
                 parameters: Mapping[str, int]) -> ScheduleResult:
        scheduled = program.copy()
        result = ScheduleResult(scheduler=self.name, program=scheduled)
        for index, node in enumerate(scheduled.body):
            if not isinstance(node, Loop):
                continue
            recipe = Recipe(f"{self.name}#{index}")
            # Auto-parallelization targets the outermost loop only, and only
            # when the compiler can prove independence.
            info = analyze_loop_parallelism(node)
            if info.is_parallel:
                recipe.add(Parallelize(index))
            recipe.add(Vectorize(index, require_unit_stride=True))
            application = apply_recipe(scheduled, recipe, strict=False)
            status = "optimized" if application.applied else "unchanged"
            result.nests.append(NestScheduleInfo(index, status, recipe,
                                                 "; ".join(m for _, m in application.failed)))
        return result

"""Evolutionary search over transformation recipes.

The optimizations for non-BLAS loop nests in daisy's database are found with
an evolutionary search: candidate recipes are seeded, mutated and selected
over several epochs, with the runtime (here: the performance model) as the
fitness function, and re-seeded from the best recipes of the most similar
loop nests (Section 4, "Seeding a Scheduling Database").
"""

from __future__ import annotations

import json
import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis.dependence import legal_permutations
from ..analysis.parallelism import analyze_loop_parallelism
from ..ir.nodes import Loop, Program
from ..perf.model import CostModel
from ..transforms.base import TransformationError
from ..transforms.interchange import Interchange
from ..transforms.parallelize import Parallelize, Unroll, Vectorize
from ..transforms.recipe import Recipe, apply_recipe
from ..transforms.tiling import Tile

#: Candidate tile sizes (0 means "do not tile this loop").
TILE_SIZES = (0, 16, 32, 64, 128)
UNROLL_FACTORS = (1, 2, 4, 8)


def nest_salt(nest: Loop) -> int:
    """A deterministic salt derived from a nest's content.

    Searches draw from ``Random((seed, salt))`` so that (a) repeated searches
    of the same nest are reproducible regardless of call order or concurrency
    and (b) different nests still explore different candidate sequences.
    """
    from ..ir.serialization import node_to_dict

    return zlib.crc32(json.dumps(node_to_dict(nest), sort_keys=True).encode("utf-8"))


@dataclass
class SearchConfig:
    """Parameters of the evolutionary search."""

    population_size: int = 8
    epochs: int = 2
    generations_per_epoch: int = 3
    mutation_rate: float = 0.4
    elite: int = 2
    seed: int = 0


@dataclass
class SearchOutcome:
    """Best recipe found for one nest."""

    recipe: Recipe
    runtime: float
    evaluated: int


@dataclass
class _Candidate:
    """Internal representation of one candidate schedule."""

    order: Tuple[str, ...]
    tile_sizes: Dict[str, int]
    parallelize: bool
    vectorize: bool
    unroll: int

    def to_recipe(self, nest_index: int, name: str = "candidate") -> Recipe:
        recipe = Recipe(name)
        recipe.add(Interchange(nest_index, list(self.order)))
        active_tiles = {k: v for k, v in self.tile_sizes.items() if v > 1}
        if active_tiles:
            recipe.add(Tile(nest_index, active_tiles))
        if self.parallelize:
            recipe.add(Parallelize(nest_index))
        if self.vectorize:
            recipe.add(Vectorize(nest_index))
        if self.unroll > 1:
            recipe.add(Unroll(nest_index, factor=self.unroll))
        return recipe


class EvolutionarySearch:
    """Evolutionary recipe search for a single top-level loop nest."""

    def __init__(self, cost_model: CostModel, config: Optional[SearchConfig] = None):
        self.cost_model = cost_model
        self.config = config or SearchConfig()
        # Kept as the default rng of random_candidate/mutate for direct
        # callers; search() itself uses a fresh per-call rng so that results
        # are reproducible per nest and independent of call order (which also
        # makes one search instance safe to share across batch threads).
        self._rng = random.Random(self.config.seed)

    # -- candidate generation -------------------------------------------------------

    def _legal_orders(self, nest: Loop) -> List[Tuple[str, ...]]:
        band = nest.perfectly_nested_band()
        if len(band) > 5:
            return [tuple(loop.iterator for loop in band)]
        return legal_permutations(nest)

    def _nest_is_parallelizable(self, nest: Loop) -> bool:
        return analyze_loop_parallelism(nest).is_parallel

    def random_candidate(self, nest: Loop, orders: Sequence[Tuple[str, ...]],
                         rng: Optional[random.Random] = None) -> _Candidate:
        rng = rng or self._rng
        order = rng.choice(list(orders))
        tile_sizes = {}
        for iterator in order:
            tile_sizes[iterator] = rng.choice(TILE_SIZES)
        return _Candidate(
            order=tuple(order),
            tile_sizes=tile_sizes,
            parallelize=rng.random() < 0.8,
            vectorize=rng.random() < 0.8,
            unroll=rng.choice(UNROLL_FACTORS),
        )

    def mutate(self, candidate: _Candidate,
               orders: Sequence[Tuple[str, ...]],
               rng: Optional[random.Random] = None) -> _Candidate:
        rng = rng or self._rng
        order = candidate.order
        tile_sizes = dict(candidate.tile_sizes)
        parallelize = candidate.parallelize
        vectorize = candidate.vectorize
        unroll = candidate.unroll
        roll = rng.random()
        if roll < 0.25:
            order = tuple(rng.choice(list(orders)))
        elif roll < 0.6 and tile_sizes:
            iterator = rng.choice(list(tile_sizes))
            tile_sizes[iterator] = rng.choice(TILE_SIZES)
        elif roll < 0.75:
            parallelize = not parallelize
        elif roll < 0.9:
            vectorize = not vectorize
        else:
            unroll = rng.choice(UNROLL_FACTORS)
        return _Candidate(order, tile_sizes, parallelize, vectorize, unroll)

    # -- fitness --------------------------------------------------------------------

    def _evaluate(self, program: Program, nest_index: int, candidate: _Candidate,
                  parameters: Mapping[str, int]) -> Tuple[float, Recipe]:
        recipe = candidate.to_recipe(nest_index)
        trial = program.copy()
        apply_recipe(trial, recipe, strict=False)
        runtime = self.cost_model.estimate_seconds(trial, parameters)
        return runtime, recipe

    # -- search ---------------------------------------------------------------------

    def search(self, program: Program, nest_index: int,
               parameters: Mapping[str, int],
               seed_recipes: Optional[Sequence[Recipe]] = None) -> SearchOutcome:
        """Search for the best recipe for one nest of ``program``.

        ``seed_recipes`` (e.g. the best recipes of the most similar nests in
        the database, or Tiramisu-style candidates) join the initial
        population after being re-targeted to ``nest_index``.
        """
        nest = program.body[nest_index]
        if not isinstance(nest, Loop):
            raise TransformationError(f"node {nest_index} is not a loop nest")
        orders = self._legal_orders(nest)

        # Fresh per-call rng: every search over the same nest draws the same
        # sequence, regardless of previous calls or concurrent threads.
        rng = random.Random(f"{self.config.seed}:{nest_salt(nest)}")
        population: List[_Candidate] = [
            self.random_candidate(nest, orders, rng=rng)
            for _ in range(self.config.population_size)
        ]

        evaluated = 0
        best_runtime = float("inf")
        best_recipe = Recipe("identity")

        seed_evaluations: List[Tuple[float, Recipe]] = []
        for seed_recipe in (seed_recipes or []):
            trial = program.copy()
            apply_recipe(trial, seed_recipe, strict=False)
            runtime = self.cost_model.estimate_seconds(trial, parameters)
            evaluated += 1
            seed_evaluations.append((runtime, seed_recipe))
            if runtime < best_runtime:
                best_runtime, best_recipe = runtime, seed_recipe

        for _epoch in range(self.config.epochs):
            for _generation in range(self.config.generations_per_epoch):
                scored: List[Tuple[float, _Candidate, Recipe]] = []
                for candidate in population:
                    runtime, recipe = self._evaluate(program, nest_index, candidate,
                                                     parameters)
                    evaluated += 1
                    scored.append((runtime, candidate, recipe))
                    if runtime < best_runtime:
                        best_runtime, best_recipe = runtime, recipe
                scored.sort(key=lambda item: item[0])
                elite = [candidate for _, candidate, _ in scored[:self.config.elite]]
                next_population = list(elite)
                while len(next_population) < self.config.population_size:
                    parent = rng.choice(elite)
                    if rng.random() < self.config.mutation_rate:
                        next_population.append(self.mutate(parent, orders, rng=rng))
                    else:
                        next_population.append(
                            self.random_candidate(nest, orders, rng=rng))
                population = next_population

        # Baseline: leaving the nest untouched must also be considered.
        identity_runtime = self.cost_model.estimate_seconds(program, parameters)
        evaluated += 1
        if identity_runtime < best_runtime:
            best_runtime, best_recipe = identity_runtime, Recipe("identity")

        return SearchOutcome(recipe=best_recipe, runtime=best_runtime,
                             evaluated=evaluated)

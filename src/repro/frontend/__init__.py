"""Frontends translating source languages into the symbolic loop-nest IR."""

from .clike import parse_clike_program

__all__ = ["parse_clike_program"]

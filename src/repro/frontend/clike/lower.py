"""Lowering of the C-like AST into the symbolic loop-nest IR."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ...ir.builder import ProgramBuilder
from ...ir.nodes import Program
from ...ir.symbols import Call, Const, Expr, Read, Sym
from .ast import (ArrayRef, Assignment, BinaryOp, CallExpr, Declaration,
                  Expression, ForLoop, Identifier, NumberLiteral,
                  SourceProgram, UnaryOp)
from .parser import parse_source

#: Math functions of the source language mapped to IR intrinsics.
_INTRINSIC_NAMES = {"sqrt", "exp", "log", "pow", "fabs", "fmax", "fmin", "tanh"}
_INTRINSIC_RENAMES = {"fabs": "abs"}


class LoweringError(Exception):
    """Raised when a parsed program cannot be expressed in the loop-nest IR."""


class _Lowerer:
    def __init__(self, source_program: SourceProgram):
        self.source = source_program
        self.builder = ProgramBuilder(source_program.name)
        self.declared: Dict[str, int] = {}
        self.loop_iterators: List[str] = []

    # -- expressions -------------------------------------------------------------

    def lower_index(self, expression: Expression) -> Expr:
        """Lower an expression appearing in a subscript or loop bound."""
        if isinstance(expression, NumberLiteral):
            return Const(int(expression.value) if float(expression.value).is_integer()
                         else expression.value)
        if isinstance(expression, Identifier):
            return Sym(expression.name)
        if isinstance(expression, UnaryOp):
            return -self.lower_index(expression.operand)
        if isinstance(expression, BinaryOp):
            left = self.lower_index(expression.left)
            right = self.lower_index(expression.right)
            if expression.op == "+":
                return left + right
            if expression.op == "-":
                return left - right
            if expression.op == "*":
                return left * right
            if expression.op == "/":
                return left // right
            if expression.op == "%":
                return left % right
        raise LoweringError(f"unsupported subscript expression: {expression!r}")

    def lower_value(self, expression: Expression) -> Expr:
        """Lower a right-hand-side expression."""
        if isinstance(expression, NumberLiteral):
            return Const(expression.value)
        if isinstance(expression, Identifier):
            name = expression.name
            if name in self.loop_iterators:
                return Sym(name)
            if name in self.declared and self.declared[name] == 0:
                return Read(name, ())
            # Undeclared plain identifiers are size parameters / symbols.
            return Sym(name)
        if isinstance(expression, ArrayRef):
            return Read(expression.name,
                        tuple(self.lower_index(index) for index in expression.indices))
        if isinstance(expression, UnaryOp):
            return -self.lower_value(expression.operand)
        if isinstance(expression, CallExpr):
            func = expression.func
            if func not in _INTRINSIC_NAMES:
                raise LoweringError(f"unknown function {func!r}")
            func = _INTRINSIC_RENAMES.get(func, func)
            return Call(func, tuple(self.lower_value(arg) for arg in expression.args))
        if isinstance(expression, BinaryOp):
            left = self.lower_value(expression.left)
            right = self.lower_value(expression.right)
            if expression.op == "+":
                return left + right
            if expression.op == "-":
                return left - right
            if expression.op == "*":
                return left * right
            if expression.op == "/":
                return Call("div", (left, right))
            if expression.op == "%":
                return left % right
        raise LoweringError(f"unsupported expression: {expression!r}")

    # -- statements ---------------------------------------------------------------

    def lower_declaration(self, declaration: Declaration) -> None:
        if declaration.dimensions:
            shape = tuple(self.lower_index(dim) for dim in declaration.dimensions)
            self.builder.add_array(declaration.name, shape, dtype=declaration.dtype)
        else:
            self.builder.add_scalar(declaration.name, dtype=declaration.dtype)
        self.declared[declaration.name] = len(declaration.dimensions)

    def lower_assignment(self, assignment: Assignment) -> None:
        if assignment.target.name not in self.declared:
            raise LoweringError(
                f"assignment to undeclared container {assignment.target.name!r}")
        indices = tuple(self.lower_index(index) for index in assignment.target.indices)
        target = (assignment.target.name, *indices)
        value = self.lower_value(assignment.value)
        if assignment.op:
            current = Read(assignment.target.name, indices)
            if assignment.op == "+":
                value = current + value
            elif assignment.op == "-":
                value = current - value
            elif assignment.op == "*":
                value = current * value
            elif assignment.op == "/":
                value = Call("div", (current, value))
            else:
                raise LoweringError(f"unsupported compound assignment {assignment.op!r}")
        self.builder.assign(target, value)

    def lower_for(self, loop: ForLoop) -> None:
        start = self.lower_index(loop.start)
        end = self.lower_index(loop.end)
        step = self.lower_index(loop.step)
        with self.builder.loop(loop.iterator, start, end, step):
            self.loop_iterators.append(loop.iterator)
            for statement in loop.body:
                self.lower_statement(statement)
            self.loop_iterators.pop()

    def lower_statement(self, statement) -> None:
        if isinstance(statement, ForLoop):
            self.lower_for(statement)
        elif isinstance(statement, Assignment):
            self.lower_assignment(statement)
        else:
            raise LoweringError(f"unsupported statement {statement!r}")

    def lower(self) -> Program:
        for declaration in self.source.declarations:
            self.lower_declaration(declaration)
        for statement in self.source.statements:
            self.lower_statement(statement)
        return self.builder.finish()


def lower_program(source_program: SourceProgram) -> Program:
    """Lower a parsed translation unit into a loop-nest program."""
    return _Lowerer(source_program).lower()


def parse_clike_program(source: str, name: str = "clike_program") -> Program:
    """Parse C-like source text and lower it into the symbolic loop-nest IR."""
    return lower_program(parse_source(source, name))

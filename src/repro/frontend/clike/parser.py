"""Recursive-descent parser for the C-like loop language."""

from __future__ import annotations

from typing import List, Optional, Tuple

from .ast import (ArrayRef, Assignment, BinaryOp, CallExpr, Declaration,
                  Expression, ForLoop, Identifier, NumberLiteral,
                  SourceProgram, Statement, UnaryOp)
from .lexer import Token, tokenize

_DTYPES = {"double": "float64", "float": "float32", "int": "int64"}


class ParseError(Exception):
    """Raised when the source does not conform to the grammar."""

    def __init__(self, message: str, token: Token):
        super().__init__(f"{message} (at line {token.line}, near {token.text!r})")
        self.token = token


class Parser:
    """Parses one translation unit."""

    def __init__(self, source: str, name: str = "clike_program"):
        self.tokens = tokenize(source)
        self.position = 0
        self.name = name

    # -- token helpers ----------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "eof":
            self.position += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._peek()
        if token.kind != kind or (text is not None and token.text != text):
            expected = text or kind
            raise ParseError(f"expected {expected!r}", token)
        return self._advance()

    def _match(self, kind: str, text: Optional[str] = None) -> bool:
        token = self._peek()
        if token.kind == kind and (text is None or token.text == text):
            self._advance()
            return True
        return False

    # -- grammar ------------------------------------------------------------------

    def parse(self) -> SourceProgram:
        declarations: List[Declaration] = []
        statements: List[Statement] = []
        while self._peek().kind == "keyword" and self._peek().text in _DTYPES:
            declarations.append(self.parse_declaration())
        while self._peek().kind != "eof":
            statements.append(self.parse_statement())
        return SourceProgram(self.name, tuple(declarations), tuple(statements))

    def parse_declaration(self) -> Declaration:
        dtype_token = self._expect("keyword")
        if dtype_token.text not in _DTYPES:
            raise ParseError("expected a type name", dtype_token)
        name = self._expect("ident").text
        dimensions: List[Expression] = []
        while self._match("op", "["):
            dimensions.append(self.parse_expression())
            self._expect("op", "]")
        self._expect("op", ";")
        return Declaration(_DTYPES[dtype_token.text], name, tuple(dimensions))

    def parse_statement(self) -> Statement:
        token = self._peek()
        if token.kind == "keyword" and token.text == "for":
            return self.parse_for_loop()
        if token.kind == "ident":
            return self.parse_assignment()
        raise ParseError("expected a statement", token)

    def parse_for_loop(self) -> ForLoop:
        self._expect("keyword", "for")
        self._expect("op", "(")
        iterator = self._expect("ident").text
        self._expect("op", "=")
        start = self.parse_expression()
        self._expect("op", ";")
        condition_iterator = self._expect("ident").text
        if condition_iterator != iterator:
            raise ParseError(f"loop condition must test {iterator!r}", self._peek())
        self._expect("op", "<")
        end = self.parse_expression()
        self._expect("op", ";")
        step = self.parse_increment(iterator)
        self._expect("op", ")")
        self._expect("op", "{")
        body: List[Statement] = []
        while not self._match("op", "}"):
            body.append(self.parse_statement())
        return ForLoop(iterator, start, end, step, tuple(body))

    def parse_increment(self, iterator: str) -> Expression:
        name = self._expect("ident").text
        if name != iterator:
            raise ParseError(f"loop increment must update {iterator!r}", self._peek())
        if self._match("op", "++"):
            return NumberLiteral(1)
        if self._match("op", "+="):
            return self.parse_expression()
        raise ParseError("expected '++' or '+=' in loop increment", self._peek())

    def parse_assignment(self) -> Assignment:
        target = self.parse_lvalue()
        token = self._peek()
        operators = {"=": "", "+=": "+", "-=": "-", "*=": "*", "/=": "/"}
        if token.kind != "op" or token.text not in operators:
            raise ParseError("expected an assignment operator", token)
        self._advance()
        value = self.parse_expression()
        self._expect("op", ";")
        return Assignment(target, operators[token.text], value)

    def parse_lvalue(self) -> ArrayRef:
        name = self._expect("ident").text
        indices: List[Expression] = []
        while self._match("op", "["):
            indices.append(self.parse_expression())
            self._expect("op", "]")
        return ArrayRef(name, tuple(indices))

    # -- expressions ----------------------------------------------------------------

    def parse_expression(self) -> Expression:
        return self.parse_additive()

    def parse_additive(self) -> Expression:
        expr = self.parse_multiplicative()
        while True:
            if self._match("op", "+"):
                expr = BinaryOp("+", expr, self.parse_multiplicative())
            elif self._match("op", "-"):
                expr = BinaryOp("-", expr, self.parse_multiplicative())
            else:
                return expr

    def parse_multiplicative(self) -> Expression:
        expr = self.parse_unary()
        while True:
            if self._match("op", "*"):
                expr = BinaryOp("*", expr, self.parse_unary())
            elif self._match("op", "/"):
                expr = BinaryOp("/", expr, self.parse_unary())
            elif self._match("op", "%"):
                expr = BinaryOp("%", expr, self.parse_unary())
            else:
                return expr

    def parse_unary(self) -> Expression:
        if self._match("op", "-"):
            return UnaryOp("-", self.parse_unary())
        if self._match("op", "+"):
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> Expression:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            value = float(token.text)
            return NumberLiteral(value)
        if token.kind == "ident":
            name = self._advance().text
            if self._match("op", "("):
                args: List[Expression] = []
                if not self._match("op", ")"):
                    args.append(self.parse_expression())
                    while self._match("op", ","):
                        args.append(self.parse_expression())
                    self._expect("op", ")")
                return CallExpr(name, tuple(args))
            indices: List[Expression] = []
            while self._match("op", "["):
                indices.append(self.parse_expression())
                self._expect("op", "]")
            if indices:
                return ArrayRef(name, tuple(indices))
            return Identifier(name)
        if self._match("op", "("):
            expr = self.parse_expression()
            self._expect("op", ")")
            return expr
        raise ParseError("expected an expression", token)


def parse_source(source: str, name: str = "clike_program") -> SourceProgram:
    """Parse a source string into a :class:`SourceProgram`."""
    return Parser(source, name).parse()

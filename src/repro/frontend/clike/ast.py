"""Abstract syntax tree of the C-like loop language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


@dataclass(frozen=True)
class NumberLiteral:
    value: float


@dataclass(frozen=True)
class Identifier:
    name: str


@dataclass(frozen=True)
class ArrayRef:
    name: str
    indices: Tuple["Expression", ...]


@dataclass(frozen=True)
class BinaryOp:
    op: str  # "+", "-", "*", "/", "%"
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class UnaryOp:
    op: str  # "-"
    operand: "Expression"


@dataclass(frozen=True)
class CallExpr:
    func: str
    args: Tuple["Expression", ...]


Expression = Union[NumberLiteral, Identifier, ArrayRef, BinaryOp, UnaryOp, CallExpr]


@dataclass(frozen=True)
class Declaration:
    """``double A[N][M];`` — a container declaration."""

    dtype: str
    name: str
    dimensions: Tuple[Expression, ...]


@dataclass(frozen=True)
class Assignment:
    """``target op= value;`` where op is one of "", "+", "-", "*", "/"."""

    target: ArrayRef
    op: str
    value: Expression


@dataclass(frozen=True)
class ForLoop:
    """``for (i = start; i < end; i += step) { body }``"""

    iterator: str
    start: Expression
    end: Expression
    step: Expression
    body: Tuple["Statement", ...]


Statement = Union[Assignment, ForLoop]


@dataclass(frozen=True)
class SourceProgram:
    """A parsed translation unit: declarations followed by statements."""

    name: str
    declarations: Tuple[Declaration, ...]
    statements: Tuple[Statement, ...]

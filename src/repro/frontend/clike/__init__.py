"""C-like loop-language frontend: lexer, parser, AST, and lowering."""

from .ast import (ArrayRef, Assignment, BinaryOp, CallExpr, Declaration,
                  ForLoop, Identifier, NumberLiteral, SourceProgram, UnaryOp)
from .lexer import LexerError, Token, tokenize
from .lower import LoweringError, lower_program, parse_clike_program
from .parser import ParseError, Parser, parse_source

__all__ = [
    "ArrayRef", "Assignment", "BinaryOp", "CallExpr", "Declaration", "ForLoop",
    "Identifier", "NumberLiteral", "SourceProgram", "UnaryOp",
    "LexerError", "Token", "tokenize",
    "LoweringError", "lower_program", "parse_clike_program",
    "ParseError", "Parser", "parse_source",
]

"""Tokenizer for the C-like loop language.

The language covers the loop-nest subset the paper's LLVM-based pipeline
consumes: container declarations, counted ``for`` loops, compound assignments
over array elements, arithmetic expressions, and calls to math intrinsics.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

KEYWORDS = {"for", "double", "float", "int"}

_TOKEN_SPEC = [
    ("COMMENT", r"//[^\n]*|/\*.*?\*/"),
    ("NUMBER", r"\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?"),
    ("IDENT", r"[A-Za-z_][A-Za-z_0-9]*"),
    ("OP", r"\+\+|--|\+=|-=|\*=|/=|<=|>=|==|!=|[-+*/%<>=(){}\[\];,]"),
    ("WHITESPACE", r"\s+"),
    ("MISMATCH", r"."),
]

_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC),
                       re.DOTALL)


class LexerError(Exception):
    """Raised on characters the language does not contain."""


@dataclass(frozen=True)
class Token:
    """A single lexical token."""

    kind: str   # "number", "ident", "keyword", "op", "eof"
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; comments and whitespace are dropped."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    for match in _TOKEN_RE.finditer(source):
        kind = match.lastgroup
        text = match.group()
        column = match.start() - line_start + 1
        if kind in ("WHITESPACE", "COMMENT"):
            newlines = text.count("\n")
            if newlines:
                line += newlines
                line_start = match.start() + text.rfind("\n") + 1
            continue
        if kind == "MISMATCH":
            raise LexerError(f"unexpected character {text!r} at line {line}, column {column}")
        if kind == "NUMBER":
            tokens.append(Token("number", text, line, column))
        elif kind == "IDENT":
            token_kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(token_kind, text, line, column))
        else:
            tokens.append(Token("op", text, line, column))
    tokens.append(Token("eof", "", line, 0))
    return tokens

"""Reference interpreter for loop-nest programs.

The interpreter executes a program directly on NumPy arrays.  It is the
ground truth for semantics: normalization and every transformation must
leave the observable outputs unchanged, and the A/B variants of each
benchmark must produce identical results.  It is intentionally simple and
slow — correctness tests use small problem sizes, while performance numbers
come from the analytical model in :mod:`repro.perf`.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Mapping, Optional, Sequence

import numpy as np

from ..ir.arrays import DTYPES
from ..ir.nodes import Computation, LibraryCall, Loop, Node, Program
from ..ir.serialization import node_from_dict
from ..ir.symbols import (Add, Call, Const, Expr, FloorDiv, Max, Min, Mod, Mul,
                          Read, Sym)

#: Intrinsics available to computations, evaluated element-wise on scalars.
INTRINSICS: Dict[str, Callable] = {
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "abs": abs,
    "pow": pow,
    "div": lambda a, b: a / b,
    "fmax": max,
    "fmin": min,
    "floor": math.floor,
    "ceil": math.ceil,
    "tanh": math.tanh,
    "select": lambda cond, then, other: then if cond > 0 else other,
}


class ExecutionError(Exception):
    """Raised when a program cannot be executed.

    Execution errors carry source context — the statement that was running
    and the loop-iterator bindings at the moment of failure — attached by
    the executor as the error propagates out of a computation.  The fuzz
    oracle relies on these typed errors to tell generator bugs (a program
    that cannot even run on the reference interpreter) apart from transform
    bugs (a pipeline or scheduler that broke a previously-running program).
    """

    def __init__(self, message: str, *,
                 statement: Optional[str] = None,
                 iterators: Optional[Mapping[str, int]] = None):
        super().__init__(message)
        self.message = message
        self.statement = statement
        self.iterators = dict(iterators) if iterators is not None else None

    def attach(self, statement: str, iterators: Mapping[str, int]) -> None:
        """Attach statement/loop context (first attachment wins)."""
        if self.statement is None:
            self.statement = statement
        if self.iterators is None:
            self.iterators = {name: int(value)
                              for name, value in iterators.items()}

    def __str__(self) -> str:
        parts = [self.message]
        if self.statement is not None:
            parts.append(f"in statement {self.statement}")
        if self.iterators:
            bindings = ", ".join(f"{name}={value}"
                                 for name, value in self.iterators.items())
            parts.append(f"at {bindings}")
        return " ".join(parts)


class OutOfBoundsError(ExecutionError):
    """An array access outside the container's allocated extent.

    Replaces the raw ``IndexError`` NumPy would raise (or, worse, the silent
    negative-index wraparound it would *not* raise): every index of every
    access is checked against ``[0, extent)`` before touching storage.
    """

    def __init__(self, array: str, indices: Sequence[int],
                 shape: Sequence[int], access: str = "read", **context):
        super().__init__(
            f"{access} of {array}[{', '.join(str(i) for i in indices)}] is out "
            f"of bounds for shape ({', '.join(str(s) for s in shape)})",
            **context)
        self.array = array
        self.indices = tuple(indices)
        self.shape = tuple(shape)
        self.access = access


class UninitializedReadError(ExecutionError):
    """A read of a transient element that was never written.

    Only raised in checked mode (``check_uninitialized=True``): transient
    containers are zero-filled scratch space, so reading one before writing
    it is well-defined numerically but almost always a generator or
    transform bug, and the fuzz oracle wants it surfaced as its own type.
    """

    def __init__(self, array: str, indices: Sequence[int], **context):
        index_text = ", ".join(str(i) for i in indices)
        super().__init__(
            f"read of transient {array}[{index_text}] before any write",
            **context)
        self.array = array
        self.indices = tuple(indices)


class Executor:
    """Executes a single program instance.

    With ``check_uninitialized=True`` every transient container tracks which
    elements have been written, and reading an unwritten element raises
    :class:`UninitializedReadError` (default off: legitimate kernels may
    accumulate into zero-initialized scratch).
    """

    def __init__(self, program: Program, parameters: Mapping[str, int],
                 storage: Dict[str, np.ndarray],
                 check_uninitialized: bool = False):
        self.program = program
        self.parameters = dict(parameters)
        self.storage = storage
        self.check_uninitialized = check_uninitialized
        self._written: Dict[str, set] = {}
        if check_uninitialized:
            self._written = {name: set() for name, arr in program.arrays.items()
                             if arr.transient}

    # -- expression evaluation ---------------------------------------------------

    def eval_expr(self, expr: Expr, env: Dict[str, float]) -> float:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Sym):
            if expr.name in env:
                return env[expr.name]
            if expr.name in self.parameters:
                return self.parameters[expr.name]
            raise ExecutionError(f"unbound symbol {expr.name!r}")
        if isinstance(expr, Add):
            return sum(self.eval_expr(t, env) for t in expr.terms)
        if isinstance(expr, Mul):
            result = 1.0
            for factor in expr.factors:
                result *= self.eval_expr(factor, env)
            return result
        if isinstance(expr, FloorDiv):
            return self.eval_expr(expr.numerator, env) // self.eval_expr(expr.denominator, env)
        if isinstance(expr, Mod):
            return self.eval_expr(expr.numerator, env) % self.eval_expr(expr.denominator, env)
        if isinstance(expr, Min):
            return min(self.eval_expr(a, env) for a in expr.args)
        if isinstance(expr, Max):
            return max(self.eval_expr(a, env) for a in expr.args)
        if isinstance(expr, Read):
            return self.read_element(expr.array, expr.indices, env)
        if isinstance(expr, Call):
            if expr.func not in INTRINSICS:
                raise ExecutionError(f"unknown intrinsic {expr.func!r}")
            args = [self.eval_expr(a, env) for a in expr.args]
            return INTRINSICS[expr.func](*args)
        raise ExecutionError(f"cannot evaluate expression of type {type(expr).__name__}")

    def _checked_index(self, array: str, data: np.ndarray, indices,
                       env: Dict[str, float], access: str) -> tuple:
        index = tuple(int(self.eval_expr(i, env)) for i in indices)
        if len(index) != data.ndim:
            raise ExecutionError(
                f"container {array!r} has rank {data.ndim} but is accessed "
                f"with {len(index)} indices")
        for position, extent in zip(index, data.shape):
            # NumPy would wrap negative indices silently and raise a raw
            # IndexError past the end; both become typed OutOfBoundsError.
            if position < 0 or position >= extent:
                raise OutOfBoundsError(array, index, data.shape, access)
        return index

    def read_element(self, array: str, indices, env: Dict[str, float]) -> float:
        if array not in self.storage:
            raise ExecutionError(f"container {array!r} is not allocated")
        data = self.storage[array]
        if not indices:
            if array in self._written and () not in self._written[array]:
                raise UninitializedReadError(array, ())
            return float(data[()]) if data.ndim == 0 else float(data)
        index = self._checked_index(array, data, indices, env, "read")
        if array in self._written and index not in self._written[array]:
            raise UninitializedReadError(array, index)
        return float(data[index])

    def write_element(self, array: str, indices, value: float,
                      env: Dict[str, float]) -> None:
        if array not in self.storage:
            raise ExecutionError(f"container {array!r} is not allocated")
        data = self.storage[array]
        if not indices:
            data[()] = value
            if array in self._written:
                self._written[array].add(())
            return
        index = self._checked_index(array, data, indices, env, "write")
        data[index] = value
        if array in self._written:
            self._written[array].add(index)

    # -- node execution -----------------------------------------------------------

    def run(self) -> None:
        env: Dict[str, float] = {}
        for node in self.program.body:
            self.execute_node(node, env)

    def execute_node(self, node: Node, env: Dict[str, float]) -> None:
        if isinstance(node, Loop):
            self.execute_loop(node, env)
        elif isinstance(node, Computation):
            self.execute_computation(node, env)
        elif isinstance(node, LibraryCall):
            self.execute_library_call(node, env)
        else:
            raise ExecutionError(f"cannot execute node of type {type(node).__name__}")

    def execute_loop(self, loop: Loop, env: Dict[str, float]) -> None:
        start = int(self.eval_expr(loop.start, env))
        end = int(self.eval_expr(loop.end, env))
        step = int(self.eval_expr(loop.step, env))
        if step <= 0:
            raise ExecutionError(f"loop {loop.iterator!r} has non-positive step")
        inner = dict(env)
        for value in range(start, end, step):
            inner[loop.iterator] = value
            for child in loop.body:
                self.execute_node(child, inner)
        # Loop iterators go out of scope after the loop; env is left untouched.

    def execute_computation(self, comp: Computation, env: Dict[str, float]) -> None:
        try:
            value = self.eval_expr(comp.value, env)
            self.write_element(comp.target.array, comp.target.indices, value, env)
        except ExecutionError as error:
            error.attach(comp.name, {name: int(value)
                                     for name, value in env.items()})
            raise

    def execute_library_call(self, call: LibraryCall, env: Dict[str, float]) -> None:
        # When idiom detection replaced a loop nest, the original nest is kept
        # in the call's metadata: semantics stay exact.
        original = call.metadata.get("original")
        if original is not None:
            self.execute_node(node_from_dict(original), env)
            return
        self._execute_builtin_routine(call)

    def _execute_builtin_routine(self, call: LibraryCall) -> None:
        routine = call.routine
        for name in list(call.outputs) + list(call.inputs):
            if name not in self.storage:
                raise ExecutionError(
                    f"library routine {routine!r}: container {name!r} "
                    "is not allocated")
        if routine == "gemm" and len(call.inputs) >= 2 and call.outputs:
            a = self.storage[call.inputs[0]]
            b = self.storage[call.inputs[1]]
            c = self.storage[call.outputs[0]]
            c += a @ b
            return
        if routine == "syrk" and call.inputs and call.outputs:
            a = self.storage[call.inputs[0]]
            c = self.storage[call.outputs[0]]
            c += a @ a.T
            return
        raise ExecutionError(
            f"library routine {routine!r} has no metadata and no builtin implementation")


def allocate_storage(program: Program, parameters: Mapping[str, int],
                     inputs: Optional[Mapping[str, np.ndarray]] = None,
                     seed: int = 0) -> Dict[str, np.ndarray]:
    """Allocate all containers of a program.

    Containers present in ``inputs`` are copied; all other non-transient
    containers are filled with reproducible random data and transients with
    zeros.
    """
    rng = np.random.default_rng(seed)
    storage: Dict[str, np.ndarray] = {}
    for name, arr in program.arrays.items():
        if inputs is not None and name in inputs:
            storage[name] = np.array(inputs[name], dtype=DTYPES[arr.dtype], copy=True)
            continue
        if arr.transient:
            storage[name] = arr.allocate(parameters)
        else:
            storage[name] = arr.allocate(parameters, rng=rng)
    return storage


def run_program(program: Program, parameters: Mapping[str, int],
                inputs: Optional[Mapping[str, np.ndarray]] = None,
                seed: int = 0,
                check_uninitialized: bool = False) -> Dict[str, np.ndarray]:
    """Execute a program and return its final storage."""
    storage = allocate_storage(program, parameters, inputs, seed)
    Executor(program, parameters, storage,
             check_uninitialized=check_uninitialized).run()
    return storage


def programs_equivalent(first: Program, second: Program,
                        parameters: Mapping[str, int],
                        rtol: float = 1e-9, atol: float = 1e-9,
                        seed: int = 0) -> bool:
    """Check observational equivalence of two programs on random inputs.

    Both programs are run on identical inputs (containers are matched by
    name); all non-transient containers present in both programs must agree.
    """
    rng = np.random.default_rng(seed)
    shared_inputs: Dict[str, np.ndarray] = {}
    for name, arr in first.arrays.items():
        if arr.transient or name not in second.arrays:
            continue
        bindings = dict(parameters)
        shared_inputs[name] = arr.allocate(bindings, rng=rng)

    result_first = run_program(first, parameters, shared_inputs, seed)
    result_second = run_program(second, parameters, shared_inputs, seed)

    for name, arr in first.arrays.items():
        if arr.transient or name not in second.arrays:
            continue
        if second.arrays[name].transient:
            continue
        if not np.allclose(result_first[name], result_second[name],
                           rtol=rtol, atol=atol):
            return False
    return True

"""Reference interpreter and semantic-equivalence checking."""

from .executor import (ExecutionError, Executor, OutOfBoundsError,
                       UninitializedReadError, allocate_storage,
                       programs_equivalent, run_program)

__all__ = [
    "ExecutionError", "Executor", "OutOfBoundsError",
    "UninitializedReadError", "allocate_storage", "programs_equivalent",
    "run_program",
]

"""Reference interpreter and semantic-equivalence checking."""

from .executor import (ExecutionError, Executor, allocate_storage,
                       programs_equivalent, run_program)

__all__ = [
    "ExecutionError", "Executor", "allocate_storage", "programs_equivalent",
    "run_program",
]

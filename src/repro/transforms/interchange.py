"""Loop interchange."""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from ..analysis.dependence import permutation_is_legal
from ..ir.nodes import Program
from ..normalization.stride_minimization import apply_permutation
from .base import Transformation, TransformationError, get_nest, set_nest


class Interchange(Transformation):
    """Reorder the perfectly nested band of one top-level loop nest."""

    name = "interchange"

    def __init__(self, nest_index: int, order: Sequence[str]):
        self.nest_index = int(nest_index)
        self.order = list(order)

    def params(self) -> Dict[str, Any]:
        return {"nest_index": self.nest_index, "order": list(self.order)}

    def apply(self, program: Program) -> Program:
        nest = get_nest(program, self.nest_index)
        band = nest.perfectly_nested_band()
        current = [loop.iterator for loop in band]
        if sorted(current) != sorted(self.order):
            raise TransformationError(
                f"interchange order {self.order} does not match band {current}")
        if self.order == current:
            return program
        if not permutation_is_legal(nest, self.order):
            raise TransformationError(
                f"interchange to {self.order} violates dependences in nest "
                f"{self.nest_index} of {program.name!r}")
        set_nest(program, self.nest_index, apply_permutation(nest, self.order))
        return program

"""Transformation framework.

The daisy auto-scheduler (Section 4) stores *optimization recipes* — sequences
of loop transformations such as interchange, tiling, parallelization and
vectorization — in a database and applies them to normalized loop nests.
Each transformation is therefore:

* addressable (it names the top-level nest it applies to),
* checkable (it can refuse to apply when illegal), and
* serializable (recipes are persisted alongside embeddings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Type

from ..ir.nodes import Loop, Program


class TransformationError(Exception):
    """Raised when a transformation cannot be applied legally."""


class Transformation:
    """Base class for all transformations.

    Subclasses implement :meth:`apply`, which mutates the given program in
    place (programs are cheap to copy; callers that need the original copy it
    first), and :meth:`params`, which returns the JSON-serializable parameter
    dictionary used for persistence.
    """

    #: Registry of transformation names to classes, for deserialization.
    registry: Dict[str, Type["Transformation"]] = {}

    #: Short name used in serialized recipes; set by subclasses.
    name: str = "transformation"

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        if cls.name in Transformation.registry:
            raise ValueError(f"duplicate transformation name {cls.name!r}")
        Transformation.registry[cls.name] = cls

    def apply(self, program: Program) -> Program:
        raise NotImplementedError

    def params(self) -> Dict[str, Any]:
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "params": self.params()}

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "Transformation":
        name = data["name"]
        if name not in Transformation.registry:
            raise ValueError(f"unknown transformation {name!r}")
        return Transformation.registry[name](**data.get("params", {}))

    def __repr__(self) -> str:
        args = ", ".join(f"{key}={value!r}" for key, value in self.params().items())
        return f"{type(self).__name__}({args})"


def get_nest(program: Program, nest_index: int) -> Loop:
    """Fetch the top-level loop nest at ``nest_index`` or raise."""
    if nest_index < 0 or nest_index >= len(program.body):
        raise TransformationError(
            f"nest index {nest_index} out of range for program {program.name!r} "
            f"with {len(program.body)} top-level nodes")
    node = program.body[nest_index]
    if not isinstance(node, Loop):
        raise TransformationError(
            f"top-level node {nest_index} of {program.name!r} is not a loop")
    return node


def set_nest(program: Program, nest_index: int, nest: Loop) -> None:
    """Replace the top-level nest at ``nest_index``."""
    program.body[nest_index] = nest

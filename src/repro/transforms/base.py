"""Transformations as passes of the unified framework.

The daisy auto-scheduler (Section 4) stores *optimization recipes* — sequences
of loop transformations such as interchange, tiling, parallelization and
vectorization — in a database and applies them to normalized loop nests.
Since PR 3 every transformation is also a :class:`repro.passes.Pass`: the
same protocol that runs the a-priori normalization stages runs scheduling
transformations, so recipes convert to instrumented
:class:`~repro.passes.pipeline.Pipeline` objects
(:meth:`repro.transforms.recipe.Recipe.to_pipeline`) with per-pass wall time
and change counters for free.  Each transformation is therefore:

* addressable (it names the top-level nest it applies to),
* checkable (it can refuse to apply when illegal, via
  :class:`TransformationError`),
* serializable (recipes are persisted alongside embeddings), and
* instrumented (``run()`` yields a :class:`~repro.passes.base.PassResult`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Type

from ..ir.nodes import Loop, Program
from ..passes.base import ApplyOutcome, Pass, PassContext


class TransformationError(Exception):
    """Raised when a transformation cannot be applied legally."""


class Transformation(Pass):
    """Base class for all transformations — a serializable, registered pass.

    Subclasses implement :meth:`apply`, which mutates the given program in
    place (programs are cheap to copy; callers that need the original copy it
    first), and :meth:`params`, which returns the JSON-serializable parameter
    dictionary used for persistence.  The legacy single-argument ``apply``
    signature is preserved; the :class:`~repro.passes.base.Pass` protocol's
    ``run(program, context)`` wraps it with timing and fingerprint-based
    change detection.
    """

    #: Registry of transformation names to classes, for deserialization.
    registry: Dict[str, Type["Transformation"]] = {}

    #: Short name used in serialized recipes (and pass results); set by
    #: subclasses.
    name: str = "transformation"

    #: Transformations cannot cheaply self-report a changed-flag, so
    #: ``run()`` derives it from content fingerprints.
    detects_change = False

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        if cls.name in Transformation.registry:
            raise ValueError(f"duplicate transformation name {cls.name!r}")
        Transformation.registry[cls.name] = cls

    def apply(self, program: Program) -> Program:
        raise NotImplementedError

    def _invoke(self, program: Program, context: PassContext) -> ApplyOutcome:
        # Adapt the legacy ``apply(program)`` signature to the Pass protocol.
        self.apply(program)
        return None

    def params(self) -> Dict[str, Any]:
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "params": self.params()}

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "Transformation":
        name = data["name"]
        if name not in Transformation.registry:
            raise ValueError(f"unknown transformation {name!r}")
        return Transformation.registry[name](**data.get("params", {}))

    def __repr__(self) -> str:
        args = ", ".join(f"{key}={value!r}" for key, value in self.params().items())
        return f"{type(self).__name__}({args})"


def get_nest(program: Program, nest_index: int) -> Loop:
    """Fetch the top-level loop nest at ``nest_index`` or raise."""
    if nest_index < 0 or nest_index >= len(program.body):
        raise TransformationError(
            f"nest index {nest_index} out of range for program {program.name!r} "
            f"with {len(program.body)} top-level nodes")
    node = program.body[nest_index]
    if not isinstance(node, Loop):
        raise TransformationError(
            f"top-level node {nest_index} of {program.name!r} is not a loop")
    return node


def set_nest(program: Program, nest_index: int, nest: Loop) -> None:
    """Replace the top-level nest at ``nest_index``."""
    program.body[nest_index] = nest

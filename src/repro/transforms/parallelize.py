"""Parallelization and vectorization annotations."""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..analysis.parallelism import analyze_loop_parallelism
from ..analysis.strides import access_stride, _array_strides
from ..analysis.affine import computation_accesses
from ..ir.nodes import Computation, Loop, Program
from .base import Transformation, TransformationError, get_nest


def _find_loop(nest: Loop, iterator: Optional[str]) -> Loop:
    if iterator is None:
        return nest
    for loop in nest.iter_loops():
        if loop.iterator == iterator:
            return loop
    raise TransformationError(f"no loop with iterator {iterator!r} in nest")


class Parallelize(Transformation):
    """Mark a loop for parallel execution across threads.

    By default the transformation refuses to parallelize loops that carry
    dependences.  Reduction loops can be forced with ``allow_reductions=True``
    — the performance model then charges the atomic-update penalty that the
    paper observes for correlation/covariance (Section 4.1).
    """

    name = "parallelize"

    def __init__(self, nest_index: int, iterator: Optional[str] = None,
                 allow_reductions: bool = False):
        self.nest_index = int(nest_index)
        self.iterator = iterator
        self.allow_reductions = bool(allow_reductions)

    def params(self) -> Dict[str, Any]:
        return {"nest_index": self.nest_index, "iterator": self.iterator,
                "allow_reductions": self.allow_reductions}

    def apply(self, program: Program) -> Program:
        nest = get_nest(program, self.nest_index)
        loop = _find_loop(nest, self.iterator)
        info = analyze_loop_parallelism(loop)
        if not info.is_parallel:
            if info.is_reduction and self.allow_reductions:
                loop.parallel = True
                return program
            raise TransformationError(
                f"loop {loop.iterator!r} in nest {self.nest_index} carries "
                f"dependences and cannot be parallelized")
        loop.parallel = True
        return program


class Vectorize(Transformation):
    """Mark the innermost loop of a nest for SIMD execution.

    Vectorization requires the loop to be parallel (or a reduction over a
    loop-invariant element) and profits only when the accesses are unit-stride
    or invariant; the transformation refuses otherwise so that recipes remain
    meaningful across loop nests.
    """

    name = "vectorize"

    def __init__(self, nest_index: int, iterator: Optional[str] = None,
                 require_unit_stride: bool = True):
        self.nest_index = int(nest_index)
        self.iterator = iterator
        self.require_unit_stride = bool(require_unit_stride)

    def params(self) -> Dict[str, Any]:
        return {"nest_index": self.nest_index, "iterator": self.iterator,
                "require_unit_stride": self.require_unit_stride}

    def apply(self, program: Program) -> Program:
        nest = get_nest(program, self.nest_index)
        if self.iterator is None:
            band = nest.perfectly_nested_band()
            loop = band[-1]
        else:
            loop = _find_loop(nest, self.iterator)

        info = analyze_loop_parallelism(loop)
        if not (info.is_parallel or info.is_reduction):
            raise TransformationError(
                f"loop {loop.iterator!r} cannot be vectorized: it carries "
                f"non-reduction dependences")

        if self.require_unit_stride and not _mostly_unit_stride(program, loop):
            raise TransformationError(
                f"loop {loop.iterator!r} has predominantly strided accesses; "
                f"refusing to vectorize")
        loop.vectorized = True
        return program


def _mostly_unit_stride(program: Program, loop: Loop) -> bool:
    """True when at least half of the affine accesses in the loop body are
    unit-stride or invariant with respect to the loop iterator."""
    good = 0
    total = 0

    def recurse(node, enclosing):
        nonlocal good, total
        if isinstance(node, Loop):
            for child in node.body:
                recurse(child, enclosing + [node.iterator])
        elif isinstance(node, Computation):
            for acc in computation_accesses(node, enclosing):
                if acc.array not in program.arrays:
                    continue
                total += 1
                strides = _array_strides(program.arrays[acc.array], {})
                stride = access_stride(acc, loop.iterator, strides)
                if stride is not None and abs(stride) <= 1:
                    good += 1

    recurse(loop, [])
    if total == 0:
        return True
    return good * 2 >= total


class Unroll(Transformation):
    """Annotate a loop with an unroll factor (consumed by the CPU model)."""

    name = "unroll"

    def __init__(self, nest_index: int, iterator: Optional[str] = None, factor: int = 4):
        self.nest_index = int(nest_index)
        self.iterator = iterator
        self.factor = int(factor)

    def params(self) -> Dict[str, Any]:
        return {"nest_index": self.nest_index, "iterator": self.iterator,
                "factor": self.factor}

    def apply(self, program: Program) -> Program:
        if self.factor < 1:
            raise TransformationError("unroll factor must be at least 1")
        nest = get_nest(program, self.nest_index)
        if self.iterator is None:
            loop = nest.perfectly_nested_band()[-1]
        else:
            loop = _find_loop(nest, self.iterator)
        loop.unroll = self.factor
        return program

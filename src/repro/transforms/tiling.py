"""Loop tiling (blocking)."""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..analysis.dependence import permutation_is_legal
from ..ir.nodes import Loop, Program
from ..ir.symbols import Const, Min, Sym
from .base import Transformation, TransformationError, get_nest, set_nest


def tile_band(nest: Loop, tile_sizes: Mapping[str, int]) -> Loop:
    """Tile the perfectly nested band of ``nest``.

    Every iterator appearing in ``tile_sizes`` is strip-mined into a tile
    loop (iterating over tile origins with the tile size as step) and a point
    loop (iterating within the tile, bounded by ``min(origin + size, end)``).
    All tile loops are placed outside all point loops, preserving the
    relative order within each group — the standard rectangular tiling.
    """
    band = nest.perfectly_nested_band()
    iterators = [loop.iterator for loop in band]
    unknown = set(tile_sizes) - set(iterators)
    if unknown:
        raise TransformationError(f"cannot tile unknown iterators {sorted(unknown)}")

    inner_body = band[-1].body

    tile_loops: List[Loop] = []
    point_loops: List[Loop] = []
    for loop in band:
        size = tile_sizes.get(loop.iterator)
        if size is None or size <= 1:
            point_loops.append(Loop(loop.iterator, loop.start, loop.end, loop.step,
                                    body=[], parallel=loop.parallel,
                                    vectorized=loop.vectorized, unroll=loop.unroll))
            continue
        tile_iterator = f"{loop.iterator}_t"
        tile_loops.append(Loop(tile_iterator, loop.start, loop.end, Const(size),
                               body=[], parallel=loop.parallel,
                               tile_of=loop.iterator))
        point_loops.append(Loop(loop.iterator, Sym(tile_iterator),
                                Min.make([Sym(tile_iterator) + size, loop.end]),
                                loop.step, body=[], vectorized=loop.vectorized,
                                unroll=loop.unroll, tile_of=loop.iterator))

    ordered = tile_loops + point_loops
    for outer, inner in zip(ordered, ordered[1:]):
        outer.body = [inner]
    ordered[-1].body = inner_body
    return ordered[0]


class Tile(Transformation):
    """Tile selected loops of a top-level nest with rectangular tiles."""

    name = "tile"

    def __init__(self, nest_index: int, tile_sizes: Mapping[str, int]):
        self.nest_index = int(nest_index)
        self.tile_sizes = {str(k): int(v) for k, v in dict(tile_sizes).items()}

    def params(self) -> Dict[str, Any]:
        return {"nest_index": self.nest_index, "tile_sizes": dict(self.tile_sizes)}

    def apply(self, program: Program) -> Program:
        if not self.tile_sizes:
            return program
        nest = get_nest(program, self.nest_index)
        band = nest.perfectly_nested_band()
        iterators = [loop.iterator for loop in band]
        unknown = set(self.tile_sizes) - set(iterators)
        if unknown:
            raise TransformationError(
                f"cannot tile unknown iterators {sorted(unknown)} in nest "
                f"{self.nest_index} of {program.name!r}")
        tiled = [it for it in iterators if self.tile_sizes.get(it, 0) > 1]
        if not tiled:
            return program
        # Rectangular tiling is strip-mining plus interchange; it is legal when
        # the tiled loops form a fully permutable band.  We approximate full
        # permutability by requiring that both the original and the reversed
        # relative order of the tiled loops (moved outermost) are legal.
        others = [it for it in iterators if it not in tiled]
        for candidate in (tiled + others, list(reversed(tiled)) + others):
            if not permutation_is_legal(nest, candidate):
                raise TransformationError(
                    f"tiling {self.tile_sizes} is not legal for nest "
                    f"{self.nest_index} of {program.name!r}")
        set_nest(program, self.nest_index, tile_band(nest, self.tile_sizes))
        return program

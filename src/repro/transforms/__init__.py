"""Classical loop transformations, idiom detection, and optimization recipes."""

from .base import Transformation, TransformationError, get_nest, set_nest
from .fusion import (Fuse, can_fuse, fuse_adjacent_loops, fuse_chains_in_body,
                     fuse_chains_in_loop, fuse_nests,
                     fuse_producer_consumer_chains)
from .idiom import (BlasMatch, ReplaceWithLibraryCall, blas_flop_expr,
                    build_library_call, detect_blas3_nests, match_blas3)
from .interchange import Interchange
from .parallelize import Parallelize, Unroll, Vectorize
from .recipe import Recipe, RecipeApplication, apply_recipe
from .tiling import Tile, tile_band

__all__ = [
    "Transformation", "TransformationError", "get_nest", "set_nest",
    "Fuse", "can_fuse", "fuse_adjacent_loops", "fuse_chains_in_body",
    "fuse_chains_in_loop", "fuse_nests", "fuse_producer_consumer_chains",
    "BlasMatch", "ReplaceWithLibraryCall", "blas_flop_expr",
    "build_library_call", "detect_blas3_nests", "match_blas3",
    "Interchange",
    "Parallelize", "Unroll", "Vectorize",
    "Recipe", "RecipeApplication", "apply_recipe",
    "Tile", "tile_band",
]

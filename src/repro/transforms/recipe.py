"""Optimization recipes: named, serializable transformation sequences.

A recipe is what the transfer-tuning database stores per loop nest: the
sequence of transformations (interchange, tiling, parallelization,
vectorization, idiom replacement, ...) that turned the normalized nest into
its optimized form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..ir.nodes import Program
from .base import Transformation, TransformationError


@dataclass
class Recipe:
    """A named sequence of transformations."""

    name: str
    transformations: List[Transformation] = field(default_factory=list)
    notes: str = ""

    def add(self, transformation: Transformation) -> "Recipe":
        self.transformations.append(transformation)
        return self

    def __len__(self) -> int:
        return len(self.transformations)

    def __iter__(self):
        return iter(self.transformations)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "notes": self.notes,
            "transformations": [t.to_dict() for t in self.transformations],
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "Recipe":
        return Recipe(
            name=data["name"],
            notes=data.get("notes", ""),
            transformations=[Transformation.from_dict(entry)
                             for entry in data.get("transformations", [])],
        )


@dataclass
class RecipeApplication:
    """Outcome of applying a recipe to a program."""

    recipe: Recipe
    applied: List[Transformation] = field(default_factory=list)
    failed: List[Tuple[Transformation, str]] = field(default_factory=list)

    @property
    def fully_applied(self) -> bool:
        return not self.failed

    def summary(self) -> str:
        return (f"recipe {self.recipe.name!r}: applied {len(self.applied)}/"
                f"{len(self.recipe)} transformations")


def apply_recipe(program: Program, recipe: Recipe,
                 strict: bool = False) -> RecipeApplication:
    """Apply a recipe to ``program`` in place.

    With ``strict=True`` the first illegal transformation raises; otherwise
    illegal transformations are recorded and skipped — mirroring the paper's
    behavior that a transformation sequence "cannot be applied" when a B loop
    nest does not reduce to an A loop nest.
    """
    result = RecipeApplication(recipe=recipe)
    for transformation in recipe.transformations:
        try:
            transformation.apply(program)
            result.applied.append(transformation)
        except TransformationError as error:
            if strict:
                raise
            result.failed.append((transformation, str(error)))
    return result

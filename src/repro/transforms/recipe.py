"""Optimization recipes: named, serializable transformation sequences.

A recipe is what the transfer-tuning database stores per loop nest: the
sequence of transformations (interchange, tiling, parallelization,
vectorization, idiom replacement, ...) that turned the normalized nest into
its optimized form.  Because transformations are passes of the unified
framework, a recipe converts directly to a
:class:`~repro.passes.pipeline.Pipeline` (:meth:`Recipe.to_pipeline`) whose
runs are instrumented per transformation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..ir.nodes import Program
from ..passes.base import PassContext, PassResult
from ..passes.pipeline import Pipeline
from .base import Transformation, TransformationError


@dataclass
class Recipe:
    """A named sequence of transformations."""

    name: str
    transformations: List[Transformation] = field(default_factory=list)
    notes: str = ""

    def add(self, transformation: Transformation) -> "Recipe":
        self.transformations.append(transformation)
        return self

    def __len__(self) -> int:
        return len(self.transformations)

    def __iter__(self):
        return iter(self.transformations)

    def to_pipeline(self) -> Pipeline:
        """This recipe as a pipeline of the unified pass framework.

        Running the pipeline applies the transformations *strictly* (an
        illegal transformation raises); use :func:`apply_recipe` for the
        skip-on-failure semantics of transfer tuning.
        """
        return Pipeline(self.name, list(self.transformations))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "notes": self.notes,
            "transformations": [t.to_dict() for t in self.transformations],
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "Recipe":
        return Recipe(
            name=data["name"],
            notes=data.get("notes", ""),
            transformations=[Transformation.from_dict(entry)
                             for entry in data.get("transformations", [])],
        )


@dataclass
class RecipeApplication:
    """Outcome of applying a recipe to a program.

    ``results`` carries one instrumented :class:`~repro.passes.base.PassResult`
    per transformation when the recipe was applied with ``instrument=True``
    (failed transformations get a result with ``error`` set).
    """

    recipe: Recipe
    applied: List[Transformation] = field(default_factory=list)
    failed: List[Tuple[Transformation, str]] = field(default_factory=list)
    results: List[PassResult] = field(default_factory=list)

    @property
    def fully_applied(self) -> bool:
        return not self.failed

    def summary(self) -> str:
        return (f"recipe {self.recipe.name!r}: applied {len(self.applied)}/"
                f"{len(self.recipe)} transformations")


def apply_recipe(program: Program, recipe: Recipe,
                 strict: bool = False,
                 instrument: bool = False) -> RecipeApplication:
    """Apply a recipe to ``program`` in place.

    With ``strict=True`` the first illegal transformation raises; otherwise
    illegal transformations are recorded and skipped — mirroring the paper's
    behavior that a transformation sequence "cannot be applied" when a B loop
    nest does not reduce to an A loop nest.  ``instrument=True`` runs each
    transformation through the pass protocol and collects per-transformation
    :class:`~repro.passes.base.PassResult` timings (kept off by default: the
    evolutionary search applies thousands of recipes on its hot path).
    """
    result = RecipeApplication(recipe=recipe)
    context = PassContext() if instrument else None
    for transformation in recipe.transformations:
        try:
            if instrument:
                result.results.append(transformation.run(program, context))
            else:
                transformation.apply(program)
            result.applied.append(transformation)
        except TransformationError as error:
            if strict:
                raise
            result.failed.append((transformation, str(error)))
            if instrument:
                result.results.append(PassResult(
                    pass_name=transformation.name, changed=False,
                    error=str(error)))
    return result

"""BLAS idiom detection and replacement.

The daisy scheduler seeds its database with an optimization recipe for every
loop nest corresponding to a BLAS-3 kernel: the nest is replaced by a call to
the matching optimized library routine (Section 4, "Seeding a Scheduling
Database").  Detection operates on *normalized* nests, which is exactly why
normalization matters here — without it, the lifting of BLAS-3 kernels fails
on several benchmarks (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..analysis.affine import decompose_access
from ..ir.nodes import Computation, LibraryCall, Loop, Program
from ..ir.serialization import node_to_dict
from ..ir.symbols import Expr, Mul, Read
from .base import Transformation, TransformationError, get_nest


@dataclass(frozen=True)
class BlasMatch:
    """Result of matching a loop nest against a BLAS kernel pattern."""

    routine: str
    output: str
    inputs: Tuple[str, ...]
    #: Iterators playing the (row, column, contraction) roles.
    roles: Tuple[str, ...]


def _flatten_product(expr: Expr) -> List[Expr]:
    if isinstance(expr, Mul):
        out: List[Expr] = []
        for factor in expr.factors:
            out.extend(_flatten_product(factor))
        return out
    return [expr]


def _addends(expr: Expr) -> List[Expr]:
    from ..ir.symbols import Add
    if isinstance(expr, Add):
        out: List[Expr] = []
        for term in expr.terms:
            out.extend(_addends(term))
        return out
    return [expr]


def match_blas3(nest: Loop) -> Optional[BlasMatch]:
    """Match a normalized nest against the matrix-multiply family.

    The pattern recognized is a 3-deep perfectly nested band whose innermost
    body is a single reduction computation of the form::

        C[f(i), g(j)] = C[f(i), g(j)] + (scalars...) * A[...] * B[...]

    where the two matrix reads each use the contraction iterator and one of
    the two output iterators.  The routine is classified as ``syrk`` when both
    reads come from the same container, ``gemm`` otherwise.
    """
    band = nest.perfectly_nested_band()
    if len(band) != 3:
        return None
    innermost = band[-1]
    comps = [node for node in innermost.body if isinstance(node, Computation)]
    if len(comps) != 1 or len(innermost.body) != 1:
        return None
    comp = comps[0]
    if not comp.is_reduction():
        return None

    iterators = [loop.iterator for loop in band]
    target = decompose_access(comp.target, iterators, True)
    if not target.affine or len(target.indices) != 2:
        return None
    target_iters = {name for index in target.indices for name in index.iterator_names()}
    if len(target_iters) != 2:
        return None
    contraction = [it for it in iterators if it not in target_iters]
    if len(contraction) != 1:
        return None
    contraction_iter = contraction[0]

    # RHS must be target + sum of products of reads/scalars where the matrix
    # reads use (row, contraction) and (contraction, column).
    addends = _addends(comp.value)
    target_reads = [a for a in addends
                    if isinstance(a, Read) and a.array == comp.target.array]
    others = [a for a in addends if a not in target_reads]
    if len(target_reads) != 1 or not others:
        return None

    matrix_reads: List[Read] = []
    for addend in others:
        for factor in _flatten_product(addend):
            if isinstance(factor, Read) and factor.indices:
                matrix_reads.append(factor)
    if len(matrix_reads) < 2:
        return None

    uses_contraction = []
    for read_node in matrix_reads:
        acc = decompose_access(
            type(comp.target)(read_node.array, read_node.indices), iterators, False)
        if not acc.affine:
            return None
        used = {name for index in acc.indices for name in index.iterator_names()}
        if contraction_iter in used:
            uses_contraction.append(read_node)
    if len(uses_contraction) < 2:
        return None

    input_arrays = tuple(sorted({read_node.array for read_node in uses_contraction}))
    routine = "syrk" if len(input_arrays) == 1 else "gemm"
    if routine == "gemm" and len(uses_contraction) > 2:
        routine = "syr2k"

    row_col = [it for it in iterators if it in target_iters]
    return BlasMatch(routine=routine, output=comp.target.array,
                     inputs=input_arrays,
                     roles=(row_col[0], row_col[1], contraction_iter))


def blas_flop_expr(nest: Loop, match: BlasMatch) -> Expr:
    """2 * product of band trip counts — the FLOP count of the contraction.

    Triangular nests (syrk/syr2k) have inner bounds that reference outer
    iterators; those iterators are replaced by half of their own extent so
    that the result is a closed-form expression over size parameters only.
    """
    from ..ir.symbols import Const, FloorDiv

    flops: Expr = Const(2)
    substitution = {}
    for loop in nest.perfectly_nested_band():
        count = loop.symbolic_trip_count().substitute(substitution)
        flops = flops * count
        substitution[loop.iterator] = FloorDiv.make(
            loop.end.substitute(substitution), 2)
    return flops


def build_library_call(nest: Loop, match: BlasMatch) -> LibraryCall:
    """Create the library-call node replacing a matched nest.

    The original nest is preserved in the call's metadata so that the
    reference interpreter can still execute the exact original semantics;
    the performance model uses the routine name and FLOP count instead.
    """
    return LibraryCall(
        routine=match.routine,
        outputs=(match.output,),
        inputs=match.inputs,
        flop_expr=blas_flop_expr(nest, match),
        metadata={
            "roles": list(match.roles),
            "original": node_to_dict(nest),
        },
    )


class ReplaceWithLibraryCall(Transformation):
    """Replace a top-level nest with a BLAS library call if it matches."""

    name = "blas_idiom"

    def __init__(self, nest_index: int, expected_routine: Optional[str] = None):
        self.nest_index = int(nest_index)
        self.expected_routine = expected_routine

    def params(self) -> Dict[str, Any]:
        return {"nest_index": self.nest_index,
                "expected_routine": self.expected_routine}

    def apply(self, program: Program) -> Program:
        nest = get_nest(program, self.nest_index)
        match = match_blas3(nest)
        if match is None:
            raise TransformationError(
                f"nest {self.nest_index} of {program.name!r} does not match a "
                f"BLAS-3 idiom")
        if self.expected_routine and match.routine != self.expected_routine:
            raise TransformationError(
                f"nest {self.nest_index} matched {match.routine!r}, expected "
                f"{self.expected_routine!r}")
        program.body[self.nest_index] = build_library_call(nest, match)
        return program


def detect_blas3_nests(program: Program) -> List[Tuple[int, BlasMatch]]:
    """All top-level nests of the program that match a BLAS-3 idiom."""
    matches: List[Tuple[int, BlasMatch]] = []
    for index, node in enumerate(program.body):
        if isinstance(node, Loop):
            match = match_blas3(node)
            if match is not None:
                matches.append((index, match))
    return matches

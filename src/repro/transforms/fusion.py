"""Loop-nest fusion.

Producer-consumer fusion of adjacent loop nests with matching iteration
domains is the optimization recipe discovered for the CLOUDSC erosion kernel
(Section 5.1, Figure 10b): after maximal fission, one-to-one
producer/consumer nests are re-fused so that intermediate values stay in
short-lived local storage.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..analysis.dataflow import producer_consumer_pairs
from ..analysis.dependence import dependences_between
from ..ir.nodes import Loop, Node, Program
from ..ir.symbols import Sym
from .base import Transformation, TransformationError, get_nest


def _rename_nest_iterators(nest: Loop, mapping: Dict[str, str]) -> Loop:
    """Return a copy of ``nest`` with band iterators renamed per ``mapping``."""
    clone = nest.copy()
    substitution = {old: Sym(new) for old, new in mapping.items()}

    def rewrite(node: Node) -> None:
        if isinstance(node, Loop):
            if node.iterator in mapping:
                node.iterator = mapping[node.iterator]
            node.start = node.start.substitute(substitution)
            node.end = node.end.substitute(substitution)
            node.step = node.step.substitute(substitution)
            for child in node.body:
                rewrite(child)
        else:
            if hasattr(node, "target"):
                node.target = node.target.substitute(substitution)
                node.value = node.value.substitute(substitution)

    rewrite(clone)
    return clone


def _matching_band_depth(first: Loop, second: Loop) -> int:
    """Number of leading band levels with identical bounds and steps."""
    band_a = first.perfectly_nested_band()
    band_b = second.perfectly_nested_band()
    depth = 0
    for loop_a, loop_b in zip(band_a, band_b):
        if (loop_a.start == loop_b.start and loop_a.end == loop_b.end
                and loop_a.step == loop_b.step):
            depth += 1
        else:
            break
    return depth


def can_fuse(first: Loop, second: Loop, depth: Optional[int] = None) -> bool:
    """Check whether fusing the two nests over their matching band is legal.

    Fusion is accepted when every dependence between the two bodies over the
    fused iterators is loop-independent (same-iteration), which is exactly
    the one-to-one producer/consumer condition used in the case study.
    """
    match = _matching_band_depth(first, second)
    if depth is not None:
        match = min(match, depth)
    if match == 0:
        return False

    band_a = first.perfectly_nested_band()[:match]
    band_b = second.perfectly_nested_band()[:match]
    mapping = {b.iterator: a.iterator for a, b in zip(band_a, band_b)}
    renamed_second = _rename_nest_iterators(second, mapping)

    fused_iterators = [loop.iterator for loop in band_a]
    inner_a = first.perfectly_nested_band()[match - 1].body
    inner_b = renamed_second.perfectly_nested_band()[match - 1].body

    for node_a in inner_a:
        for node_b in inner_b:
            for dep in dependences_between(node_a, node_b, fused_iterators):
                if not dep.loop_independent:
                    return False
            for dep in dependences_between(node_b, node_a, fused_iterators):
                if not dep.loop_independent:
                    return False
    return True


def fuse_nests(first: Loop, second: Loop, depth: Optional[int] = None) -> Loop:
    """Fuse two nests over their matching band; caller checks legality."""
    match = _matching_band_depth(first, second)
    if depth is not None:
        match = min(match, depth)
    if match == 0:
        raise TransformationError("loop nests have no matching band to fuse over")

    band_a = first.perfectly_nested_band()[:match]
    band_b = second.perfectly_nested_band()[:match]
    mapping = {b.iterator: a.iterator for a, b in zip(band_a, band_b)}
    renamed_second = _rename_nest_iterators(second, mapping)

    fused = first.copy()
    fused_inner = fused.perfectly_nested_band()[match - 1]
    second_inner = renamed_second.perfectly_nested_band()[match - 1]
    fused_inner.body = list(fused_inner.body) + list(second_inner.body)
    return fused


class Fuse(Transformation):
    """Fuse two top-level loop nests over their matching outer band."""

    name = "fuse"

    def __init__(self, first_index: int, second_index: int,
                 depth: Optional[int] = None):
        self.first_index = int(first_index)
        self.second_index = int(second_index)
        self.depth = depth

    def params(self) -> Dict[str, Any]:
        return {"first_index": self.first_index, "second_index": self.second_index,
                "depth": self.depth}

    def apply(self, program: Program) -> Program:
        if self.first_index == self.second_index:
            raise TransformationError("cannot fuse a nest with itself")
        first = get_nest(program, self.first_index)
        second = get_nest(program, self.second_index)
        if not can_fuse(first, second, self.depth):
            raise TransformationError(
                f"nests {self.first_index} and {self.second_index} of "
                f"{program.name!r} cannot be fused legally")
        # Fusion is only valid if no other node between the two nests touches
        # the containers flowing between them; require adjacency for safety.
        lo, hi = sorted((self.first_index, self.second_index))
        between = program.body[lo + 1:hi]
        if between:
            raise TransformationError(
                "fusion requires the two nests to be adjacent in program order")
        fused = fuse_nests(first, second, self.depth)
        program.body[lo:hi + 1] = [fused]
        return program


def fuse_chains_in_body(body: List[Node]) -> int:
    """Fuse adjacent one-to-one producer/consumer loops within a body list.

    This is the in-place building block used both at a program's top level
    and inside an outer loop (the CLOUDSC vertical loop).  Returns the number
    of fusions performed.
    """
    from ..analysis.dataflow import build_dataflow_graph

    fused_total = 0
    changed = True
    while changed:
        changed = False
        graph = build_dataflow_graph(list(body))
        for producer, consumer, data in sorted(graph.edges(data=True)):
            if "flow" not in data["kinds"]:
                continue
            if consumer != producer + 1:
                continue
            first = body[producer]
            second = body[consumer]
            if not isinstance(first, Loop) or not isinstance(second, Loop):
                continue
            # The flowing containers must not be touched by any other node.
            exclusive = True
            for array in data["arrays"]:
                for index in graph.nodes:
                    if index in (producer, consumer):
                        continue
                    if (array in graph.nodes[index]["writes"]
                            or array in graph.nodes[index]["reads"]):
                        exclusive = False
            if not exclusive:
                continue
            if not can_fuse(first, second):
                continue
            body[producer:consumer + 1] = [fuse_nests(first, second)]
            fused_total += 1
            changed = True
            break
    return fused_total


def fuse_adjacent_loops(body: List[Node], depth: Optional[int] = None,
                        min_depth: int = 1) -> int:
    """Greedily fuse adjacent loops of a body whenever fusion is legal.

    Unlike :func:`fuse_chains_in_body` this does not require a one-to-one
    producer/consumer relation — any pair of *adjacent* loops whose matching
    band carries only loop-independent dependences is fused.  Adjacency plus
    :func:`can_fuse` guarantees legality because the relative order of all
    statements is preserved.

    ``min_depth`` restricts fusion to pairs whose matching band is at least
    that deep; with ``min_depth=2`` only outer loops are re-joined (e.g. the
    CLOUDSC block and vertical loops that maximal fission split), while
    innermost-level fission is preserved.
    """
    fused_total = 0
    index = 0
    while index + 1 < len(body):
        first = body[index]
        second = body[index + 1]
        if (isinstance(first, Loop) and isinstance(second, Loop)
                and _matching_band_depth(first, second) >= min_depth
                and can_fuse(first, second, depth)):
            body[index:index + 2] = [fuse_nests(first, second, depth)]
            fused_total += 1
            continue
        index += 1
    return fused_total


def fuse_chains_in_loop(loop: Loop) -> int:
    """Fuse one-to-one producer/consumer chains among a loop's children."""
    return fuse_chains_in_body(loop.body)


def fuse_producer_consumer_chains(program: Program) -> int:
    """Greedily fuse adjacent one-to-one producer/consumer nests, in place.

    Returns the number of fusions performed.  This is the recipe applied to
    the CLOUDSC vertical loop after maximal fission.
    """
    fused_total = 0
    changed = True
    while changed:
        changed = False
        pairs = producer_consumer_pairs(program)
        for producer, consumer, _arrays in sorted(pairs):
            if consumer != producer + 1:
                continue
            first = program.body[producer]
            second = program.body[consumer]
            if not isinstance(first, Loop) or not isinstance(second, Loop):
                continue
            if not can_fuse(first, second):
                continue
            program.body[producer:consumer + 1] = [fuse_nests(first, second)]
            fused_total += 1
            changed = True
            break
    return fused_total

#!/usr/bin/env python3
"""Auto-scheduling beyond C: applying a database tuned on C loop nests to
Python (NPBench-style) implementations — the Section 4.3 experiment.

The daisy database is seeded exclusively from the *C* A variants.  The
NPBench variants are structurally different (operator-by-operator lowering,
reduction initialisation inside the nest, interpreter-level loops), yet after
a-priori normalization the same recipes apply.
"""

import sys

from repro.api import Session, benchmark, to_pseudocode
from repro.experiments import ExperimentSettings, figure9


def show_structural_difference(name="gemm"):
    session = Session()
    spec = benchmark(name)
    c_variant = spec.variant("a")
    py_variant = spec.variant("npbench")
    print(f"=== {name}: C (PolyBench) vs Python (NPBench) structure ===")
    print("\n--- C variant ---")
    print(to_pseudocode(c_variant))
    print("\n--- NPBench variant (operator-by-operator lowering) ---")
    print(to_pseudocode(py_variant))
    normalized = session.normalize(py_variant)
    print("\n--- NPBench variant after a-priori normalization ---")
    print(to_pseudocode(normalized.program))


def main(argv):
    benchmarks = argv or ["gemm", "2mm", "syrk", "atax", "jacobi-2d"]
    show_structural_difference(benchmarks[0])

    settings = ExperimentSettings.fast(benchmarks=benchmarks)
    rows = figure9.run(settings)
    print("\n=== Python frameworks comparison (relative to daisy) ===")
    print(figure9.format_results(rows))
    print("\n=== geometric means ===")
    print(figure9.format_summary(figure9.framework_summary(rows)))


if __name__ == "__main__":
    main(sys.argv[1:])

#!/usr/bin/env python3
"""A/B robustness study on PolyBench (Figure 6 of the paper).

Every benchmark has two semantically equivalent implementations: the original
PolyBench structure (A) and an alternative composition/permutation a
developer could just as well have written (B).  A robust auto-scheduler
should give both the same performance; the baselines do not.

Run with a subset to keep it quick::

    python examples/polybench_robustness.py gemm atax jacobi-2d
"""

import sys

from repro.experiments import ExperimentSettings, figure6


def main(argv):
    benchmarks = argv or ["gemm", "2mm", "atax", "mvt", "jacobi-2d", "syrk"]
    settings = ExperimentSettings.fast(benchmarks=benchmarks)

    print(f"scheduling A and B variants of: {', '.join(benchmarks)}")
    print("(runtimes are estimated by the machine model at the LARGE dataset)\n")

    rows = figure6.run(settings)
    print(figure6.format_results(rows))

    print("\n=== robustness summary (A/B ratios and daisy speedups) ===")
    print(figure6.format_summary(figure6.robustness_summary(rows)))
    print("\nReading the table: a robust scheduler has an A/B ratio close to 1;")
    print("'geo_speedup_of_daisy_*' is how much faster daisy is on average.")


if __name__ == "__main__":
    main(sys.argv[1:])

#!/usr/bin/env python3
"""Serving quickstart: boot the HTTP scheduling service, fire mixed traffic.

The demo starts a :class:`repro.serving.ServingServer` in-process on an
ephemeral port, then plays a client workload with the three traffic classes
a production deployment sees:

* **cold**     — workloads the service has never scheduled,
* **warm**     — repeats and normalized-equivalent variants (B variants,
  other GEMM loop orders) served from the content-addressed cache,
* **duplicate** — concurrent identical requests, coalesced into a single
  in-flight scheduler invocation.

Pass ``--cache PATH`` to back the cache with SQLite: run the demo twice and
the second run's "cold" phase is served entirely from disk.
"""

import argparse
import time
from concurrent.futures import ThreadPoolExecutor

from repro.api import SearchConfig, Session
from repro.serving import ServiceConfig, ServingClient, ServingServer

COLD = ["gemm:a", "atax:a", "bicg:a", "mvt:a"]
WARM = ["gemm:b", "atax:b", "bicg:b", "mvt:b", "gemm:a"]
DUPLICATE = ["gemm:a"] * 8


def fire(client, names, workers=1):
    started = time.perf_counter()
    if workers == 1:
        responses = [client.schedule(name) for name in names]
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            responses = list(pool.map(client.schedule, names))
    elapsed = time.perf_counter() - started
    cached = sum(1 for response in responses if response.from_cache)
    return responses, cached, elapsed


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cache", default=None,
                        help="SQLite cache path (default: in-memory)")
    parser.add_argument("--threads", type=int, default=8)
    args = parser.parse_args()

    session = Session(
        threads=args.threads, cache_path=args.cache,
        search=SearchConfig(population_size=8, epochs=1,
                            generations_per_epoch=2))
    with ServingServer(session, config=ServiceConfig(batch_window_s=0.02)) as server:
        client = ServingClient(server.address)
        print(f"serving on {server.address} "
              f"({client.health()['status']}, cache={'sqlite' if args.cache else 'memory'})\n")

        _, cached, elapsed = fire(client, COLD, workers=4)
        print(f"cold:      {len(COLD)} requests in {elapsed:.3f}s "
              f"({cached} cache hits)")

        _, cached, elapsed = fire(client, WARM, workers=4)
        print(f"warm:      {len(WARM)} requests in {elapsed:.3f}s "
              f"({cached} served from cache — B variants reuse A schedules)")

        _, cached, elapsed = fire(client, DUPLICATE, workers=len(DUPLICATE))
        print(f"duplicate: {len(DUPLICATE)} concurrent identical requests "
              f"in {elapsed:.3f}s")

        report = client.report()
        print("\n=== service report ===")
        for key in ("schedule_calls", "schedule_cache_hits",
                    "schedule_cache_misses", "normalization_hits",
                    "coalesced_requests", "cache_backend", "cache_memory_hits",
                    "cache_disk_hits", "database_shards"):
            print(f"  {key:22} {report[key]}")
        service = report["service"]
        print(f"  {'service batches':22} {service['batches']} "
              f"(largest {service['largest_batch']})")
        print(f"\n{session.report().summary()}")
    session.close()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""CLOUDSC case study (Section 5): normalizing a production-style code.

Reproduces, on the CLOUDSC proxy:

* Table 1  — the cloud-erosion loop nest before/after normalization
             (runtime plus L1 loads and evictions from the cache simulator),
* Figure 11 — full-model sequential runtime of the Fortran/C/DaCe/daisy versions,
* Figure 12 — strong and weak scaling.
"""

from repro.api import Session, to_pseudocode
from repro.experiments import (ExperimentSettings, figure11, figure12, table1)
from repro.experiments.cloudsc_pipeline import daisy_optimize


def show_erosion_transformation():
    session = Session()
    kernel = session.load("erosion")
    print("=== erosion loop nest, as written (Figure 10a) ===")
    print(to_pseudocode(kernel))
    optimized, info = daisy_optimize(kernel, parallel_blocks=False)
    print("\n=== after scalar expansion, maximal fission, producer/consumer "
          "fusion and array contraction (Figure 10b) ===")
    print(to_pseudocode(optimized))
    print("\npipeline report:", info)


def main():
    settings = ExperimentSettings.fast()

    show_erosion_transformation()

    print("\n=== Table 1: erosion kernel (NPROMA=128) ===")
    print(table1.format_results(table1.run(settings)))

    print("\n=== Figure 11: full model, sequential (NPROMA=128, NBLOCKS=512) ===")
    print(figure11.format_results(figure11.run(settings)))

    print("\n=== Figure 12a: strong scaling ===")
    print(figure12.format_strong(figure12.run_strong_scaling(settings)))

    print("\n=== Figure 12b: weak scaling ===")
    print(figure12.format_weak(figure12.run_weak_scaling(settings)))


if __name__ == "__main__":
    main()

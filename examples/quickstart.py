#!/usr/bin/env python3
"""Quickstart: the ``repro.api.Session`` facade on GEMM.

One Session object is the whole pipeline:

1. ``load()``    — C-like source, builder programs, or workload names,
2. ``normalize()`` — a-priori normalization through a content-addressed cache,
3. ``tune()`` / ``schedule()`` — the daisy auto-scheduler with transfer tuning,
4. ``estimate()`` / ``evaluate()`` — the analytical machine model,
5. ``equivalent()`` — semantic validation with the reference interpreter,
6. ``report()``  — cache/database statistics of everything above.
"""

from repro.api import ProgramBuilder, Session, to_pseudocode


def build_gemm_variant():
    """GEMM the way a developer might write it: scaling fused into the nest,
    contraction loop innermost."""
    b = ProgramBuilder("my_gemm", parameters=["NI", "NJ", "NK"])
    b.add_array("C", ("NI", "NJ"))
    b.add_array("A", ("NI", "NK"))
    b.add_array("B", ("NK", "NJ"))
    b.add_scalar("alpha")
    b.add_scalar("beta")
    with b.loop("i", 0, "NI"):
        with b.loop("j", 0, "NJ"):
            b.assign(("C", "i", "j"), b.read("C", "i", "j") * b.read("beta"))
            with b.loop("k", 0, "NK"):
                b.assign(("C", "i", "j"),
                         b.read("C", "i", "j")
                         + b.read("alpha") * b.read("A", "i", "k") * b.read("B", "k", "j"))
    return b.finish()


def main():
    session = Session(threads=12)

    program = build_gemm_variant()
    print("=== original program ===")
    print(to_pseudocode(program))

    # 1. A-priori normalization: the two criteria of the paper, served
    #    through the session's content-addressed cache.
    normalization = session.normalize(program)
    print("\n=== after a-priori normalization ===")
    print(normalization.summary())
    print(to_pseudocode(normalization.program))

    # 2. Normalization never changes semantics (checked with the interpreter).
    small = {"NI": 16, "NJ": 18, "NK": 20}
    assert session.equivalent(program, normalization.program, small)
    print("\nsemantics preserved on a small instance:", small)

    # 3. The daisy auto-scheduler: normalization + BLAS idiom detection +
    #    similarity-based transfer tuning, recorded in the session database.
    large = {"NI": 1000, "NJ": 1100, "NK": 1200}
    tuned = session.tune(program, large)
    print("\n=== daisy schedule ===")
    print(tuned.result.summary())
    for info in tuned.result.nests:
        print(f"  nest {info.nest_index}: {info.status} ({info.detail})")

    # 4. Scheduling is content-addressed: once our variant is scheduled, the
    #    registry's structurally different gemm B variant normalizes to the
    #    same canonical form and is served straight from the cache.
    first = session.schedule(program, large)
    cached = session.schedule("gemm:b", large)
    print("\nscheduling our gemm    :",
          "served from cache" if first.from_cache else "scheduled fresh")
    print("scheduling gemm:b      :",
          "served from cache" if cached.from_cache else "scheduled fresh")
    assert cached.canonical_hash == first.canonical_hash

    # 5. Runtime estimates from the analytical machine model.
    baseline_time = session.evaluate(program, large, threads=12)
    optimized_time = tuned.runtime_s
    print(f"\nestimated runtime (12 threads, LARGE size):")
    print(f"  as written : {baseline_time * 1e3:8.2f} ms")
    print(f"  daisy      : {optimized_time * 1e3:8.2f} ms")
    print(f"  speedup    : {baseline_time / optimized_time:8.1f}x")

    # 6. Everything the session did, in one report.
    print("\nsession report:", session.report().summary())


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: build a loop nest, normalize it, schedule it, estimate runtime.

This walks through the library's core workflow on GEMM:

1. describe the computation as a loop-nest program (the symbolic IR),
2. run a-priori normalization (maximal fission + stride minimization),
3. let the daisy auto-scheduler optimize it,
4. estimate the runtime of the scheduled program with the machine model,
5. check that every step preserved the program's semantics.
"""

from repro.ir import ProgramBuilder, to_pseudocode
from repro.interp import programs_equivalent
from repro.normalization import normalize
from repro.perf import CostModel
from repro.scheduler import DaisyConfig, DaisyScheduler


def build_gemm_variant():
    """GEMM the way a developer might write it: scaling fused into the nest,
    contraction loop innermost."""
    b = ProgramBuilder("my_gemm", parameters=["NI", "NJ", "NK"])
    b.add_array("C", ("NI", "NJ"))
    b.add_array("A", ("NI", "NK"))
    b.add_array("B", ("NK", "NJ"))
    b.add_scalar("alpha")
    b.add_scalar("beta")
    with b.loop("i", 0, "NI"):
        with b.loop("j", 0, "NJ"):
            b.assign(("C", "i", "j"), b.read("C", "i", "j") * b.read("beta"))
            with b.loop("k", 0, "NK"):
                b.assign(("C", "i", "j"),
                         b.read("C", "i", "j")
                         + b.read("alpha") * b.read("A", "i", "k") * b.read("B", "k", "j"))
    return b.finish()


def main():
    program = build_gemm_variant()
    print("=== original program ===")
    print(to_pseudocode(program))

    # 1. A-priori normalization: the two criteria of the paper.
    normalized, report = normalize(program)
    print("\n=== after a-priori normalization ===")
    print(report.summary())
    print(to_pseudocode(normalized))

    # 2. Normalization never changes semantics (checked with the interpreter).
    small = {"NI": 16, "NJ": 18, "NK": 20}
    assert programs_equivalent(program, normalized, small)
    print("\nsemantics preserved on a small instance:", small)

    # 3. The daisy auto-scheduler: normalization + BLAS idiom detection +
    #    similarity-based transfer tuning.
    daisy = DaisyScheduler(config=DaisyConfig(threads=12))
    result = daisy.tune(program, {"NI": 1000, "NJ": 1100, "NK": 1200})
    print("\n=== daisy schedule ===")
    print(result.summary())
    for info in result.nests:
        print(f"  nest {info.nest_index}: {info.status} ({info.detail})")

    # 4. Runtime estimates from the analytical machine model.
    large = {"NI": 1000, "NJ": 1100, "NK": 1200}
    model = CostModel(threads=12)
    baseline_time = model.estimate_seconds(program, large)
    optimized_time = model.estimate_seconds(result.program, large)
    print(f"\nestimated runtime (12 threads, LARGE size):")
    print(f"  as written : {baseline_time * 1e3:8.2f} ms")
    print(f"  daisy      : {optimized_time * 1e3:8.2f} ms")
    print(f"  speedup    : {baseline_time / optimized_time:8.1f}x")


if __name__ == "__main__":
    main()

"""Setuptools shim.

The build metadata lives in ``pyproject.toml``; this file exists so that
``python setup.py egg_info`` and other legacy setuptools entry points keep
working in offline environments.  For development, either install with
``pip install -e .`` (needs network for the build backend the first time)
or simply run with ``PYTHONPATH=src``.
"""

from setuptools import setup

setup()
